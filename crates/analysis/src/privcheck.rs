//! Privatizability analysis.
//!
//! A scalar definition inside loop `L` is privatizable w.r.t. `L` when no
//! value flows across iterations of `L` through the variable: every use
//! reached by the definition lies inside `L` and is reached exclusively by
//! same-iteration definitions (checked by re-solving reaching definitions
//! with `L`'s back edges cut). If the variable is additionally not live on
//! any path leaving `L`, it is privatizable *without copy-out* — the form
//! the paper's mapping algorithm requires (Sec. 2.2), with the reduction
//! handling of Sec. 2.3 using the weaker "w.r.t. the loop immediately
//! surrounding the reduction loop" variant.
//!
//! Arrays are handled as in phpf: privatizability w.r.t. a loop is taken
//! from the `NEW` clause of an `INDEPENDENT` directive, or inferred from a
//! "no value-based loop-carried dependences" assertion combined with
//! memory-carried writes (Sec. 3.1).

use crate::cfg::Cfg;
use crate::depend;
use crate::dom::Dominators;
use crate::induction::InductionAnalysis;
use crate::liveness::Liveness;
use crate::reach::ReachingDefs;
use hpf_ir::{Program, StmtId, VarId};
use std::collections::HashMap;

/// Verdict for one (definition, loop) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Privatizable {
    /// Cross-iteration flow: cannot privatize.
    No,
    /// Privatizable; `copy_out` says whether the last iteration's value is
    /// live after the loop and would need copying out.
    Yes { copy_out: bool },
}

impl Privatizable {
    pub fn without_copy_out(self) -> bool {
        matches!(self, Privatizable::Yes { copy_out: false })
    }

    pub fn is_privatizable(self) -> bool {
        matches!(self, Privatizable::Yes { .. })
    }
}

/// Privatizability oracle with per-loop cut-reaching-defs caching.
pub struct PrivCheck<'p> {
    p: &'p Program,
    cfg: &'p Cfg,
    rd: &'p ReachingDefs,
    live: &'p Liveness,
    cut_cache: HashMap<StmtId, ReachingDefs>,
}

impl<'p> PrivCheck<'p> {
    pub fn new(
        p: &'p Program,
        cfg: &'p Cfg,
        rd: &'p ReachingDefs,
        live: &'p Liveness,
    ) -> Self {
        PrivCheck {
            p,
            cfg,
            rd,
            live,
            cut_cache: HashMap::new(),
        }
    }

    fn cut_rd(&mut self, l: StmtId) -> &ReachingDefs {
        let (p, cfg) = (self.p, self.cfg);
        self.cut_cache
            .entry(l)
            .or_insert_with(|| ReachingDefs::compute_with_cut(p, cfg, cfg.back_edges_of(l)))
    }

    /// Is the scalar definition at `def` privatizable w.r.t. loop `l`?
    ///
    /// `def` must lie inside `l`. The `NEW` clause of an `INDEPENDENT`
    /// directive on `l` asserts privatizability directly (including
    /// copy-out-freedom — HPF semantics: NEW objects are undefined after
    /// the loop).
    pub fn scalar_privatizable(&mut self, l: StmtId, def: StmtId) -> Privatizable {
        debug_assert!(self.p.stmt(l).is_loop());
        let Some(var) = self.rd.def_var(def) else {
            return Privatizable::No;
        };
        if !self.p.is_self_or_ancestor(l, def) || def == l {
            return Privatizable::No;
        }
        if self.p.directives.is_new_var(l, var) {
            return Privatizable::Yes { copy_out: false };
        }

        // Every use inside `l` that reads `var` must be reached only by
        // defs inside `l`, and the reaching sets must be identical with the
        // back edges of `l` cut (no cross-iteration flow).
        let uses: Vec<StmtId> = self
            .p
            .preorder()
            .into_iter()
            .filter(|&s| self.p.is_self_or_ancestor(l, s) && self.rd.stmt_reads(s, var))
            .collect();
        // Gather full-graph reaching sets first (immutable borrow of self.rd).
        let full: Vec<(StmtId, Vec<StmtId>)> = uses
            .iter()
            .map(|&u| (u, self.rd.reaching_defs(self.cfg, u, var)))
            .collect();
        let cfg = self.cfg;
        let p = self.p;
        let cut = self.cut_rd(l);
        for (u, full_defs) in full {
            for d in &full_defs {
                if !p.is_self_or_ancestor(l, *d) || *d == l {
                    // An outside value (or the loop's own index def) flows in.
                    // Loop-index defs are fine only when var is the index —
                    // conservatively reject.
                    return Privatizable::No;
                }
            }
            let mut cut_defs = cut.reaching_defs(cfg, u, var);
            let mut full_sorted = full_defs;
            cut_defs.sort();
            full_sorted.sort();
            if cut_defs != full_sorted {
                // Some def only reaches around the back edge: cross-iteration
                // value flow.
                return Privatizable::No;
            }
        }

        let copy_out = self.live.live_after_loop(self.p, self.cfg, l, var);
        Privatizable::Yes { copy_out }
    }

    /// Array privatizability w.r.t. loop `l`: from the `NEW` clause, or
    /// inferred from `no_value_deps` + memory-carried writes.
    pub fn array_privatizable(
        &mut self,
        dom: &Dominators,
        ia: &InductionAnalysis,
        l: StmtId,
        array: VarId,
    ) -> bool {
        if self.p.directives.is_new_var(l, array) {
            return true;
        }
        if let Some(info) = self.p.directives.independent_of(l) {
            if info.no_value_deps {
                return depend::arrays_with_memory_carried_writes(self.p, self.cfg, dom, ia, l)
                    .contains(&array);
            }
        }
        false
    }

    /// All arrays privatizable w.r.t. loop `l`.
    pub fn privatizable_arrays(
        &mut self,
        dom: &Dominators,
        ia: &InductionAnalysis,
        l: StmtId,
    ) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        if let Some(info) = self.p.directives.independent_of(l) {
            for &v in &info.new_vars {
                if self.p.vars.info(v).is_array() && !out.contains(&v) {
                    out.push(v);
                }
            }
            if info.no_value_deps {
                for v in
                    depend::arrays_with_memory_carried_writes(self.p, self.cfg, dom, ia, l)
                {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constprop::ConstProp;
    use hpf_ir::{Expr, ProgramBuilder};

    struct Ctx {
        p: Program,
        cfg: Cfg,
        rd: ReachingDefs,
        live: Liveness,
    }

    fn ctx(p: Program) -> Ctx {
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        let live = Liveness::compute(&p, &cfg);
        Ctx { p, cfg, rd, live }
    }

    #[test]
    fn def_before_use_privatizable() {
        // do i { x = B(i) + C(i); D(i) = x } — x privatizable, no copy-out.
        let mut b = ProgramBuilder::new();
        let bb = b.real_array("B", &[8]);
        let cc = b.real_array("C", &[8]);
        let dd = b.real_array("D", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let mut dx = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            dx = Some(b.assign_scalar(
                x,
                Expr::array(bb, vec![Expr::scalar(i)]).add(Expr::array(cc, vec![Expr::scalar(i)])),
            ));
            b.assign_array(dd, vec![Expr::scalar(i)], Expr::scalar(x));
        });
        let c = ctx(b.finish());
        let mut pc = PrivCheck::new(&c.p, &c.cfg, &c.rd, &c.live);
        assert_eq!(
            pc.scalar_privatizable(lp, dx.unwrap()),
            Privatizable::Yes { copy_out: false }
        );
    }

    #[test]
    fn cross_iteration_flow_rejected() {
        // do i { D(i) = x; x = B(i) } — x read before written: the value
        // flows from the previous iteration.
        let mut b = ProgramBuilder::new();
        let bb = b.real_array("B", &[8]);
        let dd = b.real_array("D", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        b.assign_scalar(x, Expr::real(0.0));
        let mut dx = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_array(dd, vec![Expr::scalar(i)], Expr::scalar(x));
            dx = Some(b.assign_scalar(x, Expr::array(bb, vec![Expr::scalar(i)])));
        });
        let c = ctx(b.finish());
        let mut pc = PrivCheck::new(&c.p, &c.cfg, &c.rd, &c.live);
        assert_eq!(pc.scalar_privatizable(lp, dx.unwrap()), Privatizable::No);
    }

    #[test]
    fn live_after_loop_needs_copy_out() {
        // do i { x = B(i) ; D(i) = x } ; y = x
        let mut b = ProgramBuilder::new();
        let bb = b.real_array("B", &[8]);
        let dd = b.real_array("D", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let mut dx = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            dx = Some(b.assign_scalar(x, Expr::array(bb, vec![Expr::scalar(i)])));
            b.assign_array(dd, vec![Expr::scalar(i)], Expr::scalar(x));
        });
        b.assign_scalar(y, Expr::scalar(x));
        let c = ctx(b.finish());
        let mut pc = PrivCheck::new(&c.p, &c.cfg, &c.rd, &c.live);
        assert_eq!(
            pc.scalar_privatizable(lp, dx.unwrap()),
            Privatizable::Yes { copy_out: true }
        );
    }

    #[test]
    fn reduction_accumulator_not_privatizable() {
        // do j { s = s + A(j) } — s flows across iterations.
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.assign_scalar(s, Expr::real(0.0));
        let mut ds = None;
        let lp = b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
            ds = Some(b.assign_scalar(
                s,
                Expr::scalar(s).add(Expr::array(a, vec![Expr::scalar(j)])),
            ));
        });
        let c = ctx(b.finish());
        let mut pc = PrivCheck::new(&c.p, &c.cfg, &c.rd, &c.live);
        assert_eq!(pc.scalar_privatizable(lp, ds.unwrap()), Privatizable::No);
    }

    #[test]
    fn new_clause_overrides() {
        // Same cross-iteration shape, but NEW(x) asserts privatizability.
        let mut b = ProgramBuilder::new();
        let bb = b.real_array("B", &[8]);
        let dd = b.real_array("D", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        b.assign_scalar(x, Expr::real(0.0));
        let mut dx = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_array(dd, vec![Expr::scalar(i)], Expr::scalar(x));
            dx = Some(b.assign_scalar(x, Expr::array(bb, vec![Expr::scalar(i)])));
        });
        b.independent(lp, vec![x]);
        let c = ctx(b.finish());
        let mut pc = PrivCheck::new(&c.p, &c.cfg, &c.rd, &c.live);
        assert!(pc.scalar_privatizable(lp, dx.unwrap()).without_copy_out());
    }

    #[test]
    fn array_privatizability_from_new_and_inference() {
        // APPSP-like: privatizable work array via NEW and via NO_VALUE_DEPS.
        let build = |use_new: bool| {
            let mut b = ProgramBuilder::new();
            let cw = b.real_array("C", &[8, 8]);
            let r = b.real_array("R", &[8, 8]);
            let k = b.int_scalar("k");
            let i = b.int_scalar("i");
            let lp = b.do_loop(k, Expr::int(1), Expr::int(8), |b| {
                b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
                    b.assign_array(cw, vec![Expr::scalar(i), Expr::int(1)], Expr::real(0.0));
                });
                b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
                    b.assign_array(
                        r,
                        vec![Expr::scalar(i), Expr::scalar(k)],
                        Expr::array(cw, vec![Expr::scalar(i), Expr::int(1)]),
                    );
                });
            });
            if use_new {
                b.independent(lp, vec![cw]);
            } else {
                b.no_value_deps(lp);
            }
            (b.finish(), lp, cw)
        };
        for use_new in [true, false] {
            let (p, lp, cw) = build(use_new);
            let cfg = Cfg::build(&p);
            let rd = ReachingDefs::compute(&p, &cfg);
            let live = Liveness::compute(&p, &cfg);
            let dom = Dominators::compute(&cfg);
            let cp = ConstProp::compute(&p, &cfg);
            let ia = InductionAnalysis::compute(&p, &cfg, &rd, &cp);
            let mut pc = PrivCheck::new(&p, &cfg, &rd, &live);
            assert!(
                pc.array_privatizable(&dom, &ia, lp, cw),
                "use_new={}",
                use_new
            );
            assert_eq!(pc.privatizable_arrays(&dom, &ia, lp), vec![cw]);
        }
    }
}
