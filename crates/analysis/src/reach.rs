//! Reaching definitions for scalar variables, with def-use / use-def chains.
//!
//! This is the dataflow substrate of the paper's mapping algorithm: the
//! pseudocode of its Figure 3 traverses "reached uses of a definition" and
//! "reaching definitions of a use" — both are provided here. The analysis
//! can also be run with a loop's back edges *cut*, which restricts flow to
//! a single iteration; the privatizability check uses the difference
//! between the cut and uncut solutions to detect cross-iteration flow.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use hpf_ir::visit::{collect_stmt_scalar_reads, ScalarRead};
use hpf_ir::{Program, StmtId, VarId};
use std::collections::HashMap;

/// Reaching-definitions solution.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All scalar definition sites `(stmt, var)`; index = def id.
    pub def_sites: Vec<(StmtId, VarId)>,
    def_index: HashMap<StmtId, usize>,
    /// Reaching set at entry of each CFG node.
    in_sets: Vec<BitSet>,
    /// Scalar reads per statement, precomputed.
    reads: HashMap<StmtId, Vec<ScalarRead>>,
}

impl ReachingDefs {
    /// Solve over the full CFG.
    pub fn compute(p: &Program, cfg: &Cfg) -> ReachingDefs {
        Self::compute_with_cut(p, cfg, &[])
    }

    /// Solve with the given edges removed from the CFG (typically the back
    /// edges of one loop).
    pub fn compute_with_cut(
        p: &Program,
        cfg: &Cfg,
        cut: &[(NodeId, NodeId)],
    ) -> ReachingDefs {
        // Enumerate definition sites.
        let mut def_sites = Vec::new();
        let mut def_index = HashMap::new();
        for s in p.preorder() {
            if let Some(v) = p.stmt(s).written_var() {
                def_index.insert(s, def_sites.len());
                def_sites.push((s, v));
            }
        }
        let ndefs = def_sites.len();

        // Defs per variable (for kill sets).
        let mut defs_of_var: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (i, &(_, v)) in def_sites.iter().enumerate() {
            defs_of_var.entry(v).or_default().push(i);
        }

        // gen/kill per node.
        let nn = cfg.len();
        let mut gen = vec![BitSet::new(ndefs); nn];
        let mut kill = vec![BitSet::new(ndefs); nn];
        for ni in 0..nn {
            if let Some(s) = cfg.stmt_of(NodeId(ni as u32)) {
                if let Some(&d) = def_index.get(&s) {
                    gen[ni].insert(d);
                    let (_, v) = def_sites[d];
                    for &other in &defs_of_var[&v] {
                        if other != d {
                            kill[ni].insert(other);
                        }
                    }
                }
            }
        }

        // Iterate to fixpoint in RPO.
        let rpo = cfg.rpo();
        let mut in_sets = vec![BitSet::new(ndefs); nn];
        let mut out_sets = vec![BitSet::new(ndefs); nn];
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &rpo {
                let ni = n.index();
                // IN = union of preds' OUT (over uncut edges).
                let mut newin = BitSet::new(ndefs);
                for &pnode in &cfg.nodes[ni].preds {
                    if cut.contains(&(pnode, n)) {
                        continue;
                    }
                    newin.union_with(&out_sets[pnode.index()]);
                }
                let mut newout = newin.clone();
                newout.subtract(&kill[ni]);
                newout.union_with(&gen[ni]);
                if newin != in_sets[ni] {
                    in_sets[ni] = newin;
                    changed = true;
                }
                if newout != out_sets[ni] {
                    out_sets[ni] = newout;
                    changed = true;
                }
            }
        }

        // Precompute scalar reads per statement.
        let mut reads = HashMap::new();
        for s in p.preorder() {
            let mut v = Vec::new();
            collect_stmt_scalar_reads(p.stmt(s), s, &mut v);
            reads.insert(s, v);
        }

        ReachingDefs {
            def_sites,
            def_index,
            in_sets: {
                // Index by node; store directly.
                in_sets
            },
            reads,
        }
    }

    /// The definition id of a statement, if it defines a scalar.
    pub fn def_id(&self, s: StmtId) -> Option<usize> {
        self.def_index.get(&s).copied()
    }

    /// Variable defined by a definition statement.
    pub fn def_var(&self, s: StmtId) -> Option<VarId> {
        self.def_id(s).map(|d| self.def_sites[d].1)
    }

    /// Definitions of `var` reaching the *entry* of `stmt` (use-def chain:
    /// a read of `var` in `stmt` sees exactly these definitions).
    pub fn reaching_defs(&self, cfg: &Cfg, stmt: StmtId, var: VarId) -> Vec<StmtId> {
        let n = cfg.node_of(stmt);
        self.in_sets[n.index()]
            .iter()
            .filter_map(|d| {
                let (s, v) = self.def_sites[d];
                if v == var {
                    Some(s)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Does `stmt` read `var` at all (any context)?
    pub fn stmt_reads(&self, stmt: StmtId, var: VarId) -> bool {
        self.reads
            .get(&stmt)
            .is_some_and(|rs| rs.iter().any(|r| r.var == var))
    }

    /// The read occurrences of `var` in `stmt`.
    pub fn read_contexts(&self, stmt: StmtId, var: VarId) -> Vec<ScalarRead> {
        self.reads
            .get(&stmt)
            .map(|rs| rs.iter().copied().filter(|r| r.var == var).collect())
            .unwrap_or_default()
    }

    /// All uses (statements reading the defined variable) reached by the
    /// definition at `def_stmt` (def-use chain).
    pub fn reached_uses(&self, p: &Program, cfg: &Cfg, def_stmt: StmtId) -> Vec<StmtId> {
        let Some(d) = self.def_id(def_stmt) else {
            return Vec::new();
        };
        let (_, var) = self.def_sites[d];
        let mut out = Vec::new();
        for s in p.preorder() {
            if !self.stmt_reads(s, var) {
                continue;
            }
            let n = cfg.node_of(s);
            if self.in_sets[n.index()].contains(d) {
                out.push(s);
            }
        }
        out
    }

    /// Is `def_stmt` the *only* definition reaching every use it reaches?
    /// (The paper's `IsUniqueDef` check in Figure 3.)
    pub fn is_unique_def(&self, p: &Program, cfg: &Cfg, def_stmt: StmtId) -> bool {
        let Some(var) = self.def_var(def_stmt) else {
            return false;
        };
        for u in self.reached_uses(p, cfg, def_stmt) {
            let defs = self.reaching_defs(cfg, u, var);
            if defs.len() != 1 || defs[0] != def_stmt {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{BinOp, Expr, ProgramBuilder};

    #[test]
    fn straight_line_chains() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let d1 = b.assign_scalar(x, Expr::real(1.0));
        let u1 = b.assign_scalar(y, Expr::scalar(x));
        let d2 = b.assign_scalar(x, Expr::real(2.0));
        let u2 = b.assign_scalar(y, Expr::scalar(x));
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        assert_eq!(rd.reaching_defs(&cfg, u1, x), vec![d1]);
        assert_eq!(rd.reaching_defs(&cfg, u2, x), vec![d2]);
        assert_eq!(rd.reached_uses(&p, &cfg, d1), vec![u1]);
        assert_eq!(rd.reached_uses(&p, &cfg, d2), vec![u2]);
        assert!(rd.is_unique_def(&p, &cfg, d1));
    }

    #[test]
    fn branch_merges_defs() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let c = b.bool_scalar("c");
        let mut d1 = None;
        let mut d2 = None;
        b.if_then_else(
            Expr::scalar(c),
            |b| {
                d1 = Some(b.assign_scalar(x, Expr::real(1.0)));
            },
            |b| {
                d2 = Some(b.assign_scalar(x, Expr::real(2.0)));
            },
        );
        let u = b.assign_scalar(y, Expr::scalar(x));
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        let mut defs = rd.reaching_defs(&cfg, u, x);
        defs.sort();
        assert_eq!(defs, vec![d1.unwrap(), d2.unwrap()]);
        assert!(!rd.is_unique_def(&p, &cfg, d1.unwrap()));
    }

    #[test]
    fn loop_carried_def_reaches_via_back_edge_only() {
        // s = 0 ; do i { y = s ; s = s + 1 }
        // Uncut: the use of s in `y = s` sees both the init and the in-loop
        // def. With the loop's back edges cut it sees only the init.
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        let s = b.real_scalar("s");
        let y = b.real_scalar("y");
        let d0 = b.assign_scalar(s, Expr::real(0.0));
        let mut use_s = None;
        let mut d1 = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(4), |b| {
            use_s = Some(b.assign_scalar(y, Expr::scalar(s)));
            d1 = Some(b.assign_scalar(s, Expr::scalar(s).add(Expr::real(1.0))));
        });
        let p = b.finish();
        let cfg = Cfg::build(&p);

        let rd = ReachingDefs::compute(&p, &cfg);
        let mut defs = rd.reaching_defs(&cfg, use_s.unwrap(), s);
        defs.sort();
        let mut expect = vec![d0, d1.unwrap()];
        expect.sort();
        assert_eq!(defs, expect);

        let rd_cut = ReachingDefs::compute_with_cut(&p, &cfg, cfg.back_edges_of(lp));
        assert_eq!(rd_cut.reaching_defs(&cfg, use_s.unwrap(), s), vec![d0]);
    }

    #[test]
    fn def_before_use_in_same_iteration() {
        // do i { x = A(i) ; y = x }  — with back edge cut, the use still
        // sees the in-loop def: same-iteration flow.
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let mut dx = None;
        let mut uy = None;
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            dx = Some(b.assign_scalar(x, Expr::array(a, vec![Expr::scalar(i)])));
            uy = Some(b.assign_scalar(y, Expr::scalar(x)));
        });
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let rd_cut = ReachingDefs::compute_with_cut(&p, &cfg, cfg.back_edges_of(lp));
        assert_eq!(rd_cut.reaching_defs(&cfg, uy.unwrap(), x), vec![dx.unwrap()]);
        assert!(rd_cut.is_unique_def(&p, &cfg, dx.unwrap()));
    }

    #[test]
    fn do_stmt_defines_loop_var() {
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        let y = b.int_scalar("y");
        let lp = b.do_loop(i, Expr::int(1), Expr::int(4), |b| {
            b.assign_scalar(y, Expr::scalar(i));
        });
        let u_after = b.if_then(Expr::scalar(i).cmp(BinOp::Gt, Expr::int(4)), |b| {
            b.assign_scalar(y, Expr::int(0));
        });
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        assert_eq!(rd.def_var(lp), Some(i));
        // The IF after the loop reads i defined by the DO.
        assert_eq!(rd.reaching_defs(&cfg, u_after, i), vec![lp]);
    }
}
