//! # hpf-analysis
//!
//! Program analyses over [`hpf_ir`] programs, reconstructing the analysis
//! phase of the phpf prototype HPF compiler that the paper's mapping
//! algorithm builds on (paper Sec. 2.2: "It follows an earlier program
//! analysis phase which constructs the static single assignment (SSA)
//! representation of the program and performs constant propagation and
//! induction variable recognition").
//!
//! * [`cfg`](mod@cfg) — control-flow graph with identified loop back edges
//! * [`dom`] — dominator tree
//! * [`reach`] — reaching definitions / def-use chains (with back-edge cuts)
//! * [`liveness`] — live scalars, including liveness across loop exits
//! * [`ssa`] — pruned phi placement and definition versioning
//! * [`constprop`] — constant propagation and expression folding
//! * [`induction`] — induction variables and affine closed forms
//! * [`privcheck`] — scalar and array privatizability
//! * [`reduction`] — accumulation and maxloc reduction recognition
//! * [`depend`] — affine dependence tests (vectorization legality,
//!   memory-carried writes)
//! * [`controldep`] — structural control dependence (paper Sec. 4)
//! * [`autopriv`] — automatic array privatizability (the paper's stated
//!   future work, integrated)

pub mod autopriv;
pub mod bitset;
pub mod cfg;
pub mod constprop;
pub mod controldep;
pub mod depend;
pub mod dom;
pub mod induction;
pub mod liveness;
pub mod privcheck;
pub mod reach;
pub mod reduction;
pub mod ssa;

pub use cfg::{Cfg, NodeId};
pub use constprop::ConstProp;
pub use dom::Dominators;
pub use induction::{InductionAnalysis, InductionVar};
pub use liveness::Liveness;
pub use privcheck::{PrivCheck, Privatizable};
pub use reach::ReachingDefs;
pub use reduction::{find_reductions, RedOp, Reduction};
pub use ssa::Ssa;

use hpf_ir::Program;

/// All analyses of one program, computed once and shared by the mapping and
/// lowering phases.
pub struct Analysis<'p> {
    pub program: &'p Program,
    pub cfg: Cfg,
    pub dom: Dominators,
    pub rd: ReachingDefs,
    pub live: Liveness,
    pub ssa: Ssa,
    pub constprop: ConstProp,
    pub induction: InductionAnalysis,
    pub reductions: Vec<Reduction>,
}

impl<'p> Analysis<'p> {
    /// Run the full analysis pipeline.
    pub fn run(program: &'p Program) -> Analysis<'p> {
        let cfg = Cfg::build(program);
        let dom = Dominators::compute(&cfg);
        let rd = ReachingDefs::compute(program, &cfg);
        let live = Liveness::compute(program, &cfg);
        let ssa = Ssa::compute(program, &cfg, &dom, &live);
        let constprop = ConstProp::compute(program, &cfg);
        let induction = InductionAnalysis::compute(program, &cfg, &rd, &constprop);
        let reductions = find_reductions(program);
        Analysis {
            program,
            cfg,
            dom,
            rd,
            live,
            ssa,
            constprop,
            induction,
            reductions,
        }
    }

    /// A fresh privatizability oracle borrowing this analysis.
    pub fn priv_check(&self) -> PrivCheck<'_> {
        PrivCheck::new(self.program, &self.cfg, &self.rd, &self.live)
    }

    /// The reduction recognized at a given statement, if any.
    pub fn reduction_at(&self, s: hpf_ir::StmtId) -> Option<&Reduction> {
        self.reductions.iter().find(|r| r.stmts.contains(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    #[test]
    fn full_pipeline_on_parsed_program() {
        let src = r#"
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(20), B(20), C(20), D(20), E(20), F(20)
INTEGER i, m
REAL x, y, z
m = 2
DO i = 2, 19
  m = m + 1
  x = B(i) + C(i)
  y = A(i) + B(i)
  z = E(i) + F(i)
  A(i+1) = y / z
  D(m) = x / z
END DO
"#;
        let p = parse_program(src).unwrap();
        let a = Analysis::run(&p);
        // m recognized as an induction variable of the i loop.
        let m = p.vars.lookup("m").unwrap();
        let lp = p
            .preorder()
            .into_iter()
            .find(|&s| p.stmt(s).is_loop())
            .unwrap();
        let iv = a.induction.of(lp, m).expect("induction var m");
        assert_eq!(iv.step, 1);
        assert_eq!(iv.init, 2);
        // x, y, z privatizable without copy-out.
        let mut pc = a.priv_check();
        for name in ["x", "y", "z"] {
            let v = p.vars.lookup(name).unwrap();
            let def = hpf_ir::visit::defs_of(&p, v)[0];
            assert!(
                pc.scalar_privatizable(lp, def).without_copy_out(),
                "{} should be privatizable",
                name
            );
        }
        // No reductions in this fragment.
        assert!(a.reductions.is_empty());
    }
}
