//! Reduction recognition.
//!
//! Two patterns are recognized, matching what the paper's benchmarks need:
//!
//! 1. **Accumulation**: `s = s ⊕ e` where `⊕ ∈ {+, *, MAX, MIN}` and `e`
//!    does not read `s`, with `s` not otherwise defined or read in the
//!    loop (Figure 5, TOMCATV residual norms).
//! 2. **Maxloc** (DGEFA partial pivoting): an `IF` of the form
//!    `IF (f(e) > s) THEN { s = f(e); l = idx }` — a max reduction carrying
//!    the location of the maximum along with it.
//!
//! The mapping of reduction scalars is Sec. 2.3 of the paper and lives in
//! `phpf-core`; this module only identifies the operations and the
//! *partial-reduction operand* — the partitioned rhs array reference whose
//! ownership governs where each partial reduction executes.

use hpf_ir::{ArrayRef, BinOp, Expr, Intrinsic, LValue, Program, Stmt, StmtId, VarId};

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Sum,
    Prod,
    Max,
    Min,
    /// Max with carried location index (`maxloc`).
    MaxLoc,
}

impl RedOp {
    pub fn name(self) -> &'static str {
        match self {
            RedOp::Sum => "SUM",
            RedOp::Prod => "PRODUCT",
            RedOp::Max => "MAX",
            RedOp::Min => "MIN",
            RedOp::MaxLoc => "MAXLOC",
        }
    }
}

/// One recognized reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    pub op: RedOp,
    /// The accumulator scalar.
    pub var: VarId,
    /// Location variable for `MaxLoc` reductions.
    pub loc_var: Option<VarId>,
    /// The innermost loop carrying the reduction.
    pub loop_id: StmtId,
    /// Statements forming the reduction (the accumulation assignment, or
    /// the IF plus its body for maxloc).
    pub stmts: Vec<StmtId>,
    /// A partitioned rhs array reference inside the reduction whose owner
    /// performs the partial accumulation (the paper's "special array
    /// reference"); `None` when the operand is scalar/replicated.
    pub operand: Option<ArrayRef>,
}

/// Recognize all reductions in the program.
pub fn find_reductions(p: &Program) -> Vec<Reduction> {
    let mut out = Vec::new();
    for l in p.preorder() {
        if !p.stmt(l).is_loop() {
            continue;
        }
        let Stmt::Do { body, .. } = p.stmt(l) else {
            continue;
        };
        for &s in body {
            if let Some(r) = match_accumulation(p, l, s) {
                out.push(r);
            } else if let Some(r) = match_maxloc(p, l, s) {
                out.push(r);
            }
        }
    }
    out
}

/// `s = s ⊕ e`, with `e` free of `s`, `s` read/written nowhere else in `l`.
fn match_accumulation(p: &Program, l: StmtId, s: StmtId) -> Option<Reduction> {
    let Stmt::Assign {
        lhs: LValue::Scalar(v),
        rhs,
    } = p.stmt(s)
    else {
        return None;
    };
    let (op, operand_expr): (RedOp, &Expr) = match rhs {
        Expr::Binary(BinOp::Add, a, b) => match (&**a, &**b) {
            (Expr::Scalar(x), e) if x == v => (RedOp::Sum, e),
            (e, Expr::Scalar(x)) if x == v => (RedOp::Sum, e),
            _ => return None,
        },
        Expr::Binary(BinOp::Mul, a, b) => match (&**a, &**b) {
            (Expr::Scalar(x), e) if x == v => (RedOp::Prod, e),
            (e, Expr::Scalar(x)) if x == v => (RedOp::Prod, e),
            _ => return None,
        },
        Expr::Intrinsic(i @ (Intrinsic::Max | Intrinsic::Min), args) => {
            let red = if *i == Intrinsic::Max {
                RedOp::Max
            } else {
                RedOp::Min
            };
            match (&args[0], &args[1]) {
                (Expr::Scalar(x), e) if x == v => (red, e),
                (e, Expr::Scalar(x)) if x == v => (red, e),
                _ => return None,
            }
        }
        _ => return None,
    };
    if operand_expr.scalar_reads().contains(v) {
        return None;
    }
    if !exclusive_in_loop(p, l, s, *v) {
        return None;
    }
    Some(Reduction {
        op,
        var: *v,
        loc_var: None,
        loop_id: l,
        stmts: vec![s],
        operand: operand_expr.array_refs().first().map(|r| (*r).clone()),
    })
}

/// `IF (e > s) THEN { s = e' ; loc = idx }` with `e` structurally equal to
/// `e'` (maxloc); `>=`, `<`, `<=` variants accepted (min via `<`).
fn match_maxloc(p: &Program, l: StmtId, s: StmtId) -> Option<Reduction> {
    let Stmt::If {
        cond,
        then_body,
        else_body,
    } = p.stmt(s)
    else {
        return None;
    };
    if !else_body.is_empty() || then_body.is_empty() || then_body.len() > 2 {
        return None;
    }
    let Expr::Binary(rel, a, b) = cond else {
        return None;
    };
    // Normalize to candidate > accumulator.
    let (cand, acc_expr, is_max) = match rel {
        BinOp::Gt | BinOp::Ge => (&**a, &**b, true),
        BinOp::Lt | BinOp::Le => (&**a, &**b, false),
        _ => return None,
    };
    let Expr::Scalar(acc) = acc_expr else {
        return None;
    };
    // First body statement must assign the accumulator the candidate value.
    let Stmt::Assign {
        lhs: LValue::Scalar(v0),
        rhs: r0,
    } = p.stmt(then_body[0])
    else {
        return None;
    };
    if v0 != acc || r0 != cand {
        return None;
    }
    // Optional second statement records the location.
    let mut loc_var = None;
    if then_body.len() == 2 {
        let Stmt::Assign {
            lhs: LValue::Scalar(lv),
            ..
        } = p.stmt(then_body[1])
        else {
            return None;
        };
        loc_var = Some(*lv);
    }
    if !exclusive_in_loop(p, l, s, *acc) {
        return None;
    }
    let _ = is_max; // min-loc treated uniformly
    let mut stmts = vec![s];
    stmts.extend_from_slice(then_body);
    Some(Reduction {
        op: RedOp::MaxLoc,
        var: *acc,
        loc_var,
        loop_id: l,
        stmts,
        operand: cand.array_refs().first().map(|r| (*r).clone()),
    })
}

/// `var` is defined/read in loop `l` only within the reduction statement
/// subtree rooted at `s`.
fn exclusive_in_loop(p: &Program, l: StmtId, s: StmtId, var: VarId) -> bool {
    for t in p.preorder() {
        if t == l || !p.is_self_or_ancestor(l, t) || p.is_self_or_ancestor(s, t) {
            continue;
        }
        if p.stmt(t).written_var() == Some(var) {
            return false;
        }
        let mut reads = Vec::new();
        hpf_ir::visit::collect_stmt_scalar_reads(p.stmt(t), t, &mut reads);
        if reads.iter().any(|r| r.var == var) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{Expr, ProgramBuilder};

    #[test]
    fn sum_reduction_figure5() {
        // do i { s = 0; do j { s = s + A(i,j) } ; B(i) = s }
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8, 8]);
        let bb = b.real_array("B", &[8]);
        let i = b.int_scalar("i");
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(s, Expr::real(0.0));
            b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
                b.assign_scalar(
                    s,
                    Expr::scalar(s).add(Expr::array(a, vec![Expr::scalar(i), Expr::scalar(j)])),
                );
            });
            b.assign_array(bb, vec![Expr::scalar(i)], Expr::scalar(s));
        });
        let p = b.finish();
        let reds = find_reductions(&p);
        assert_eq!(reds.len(), 1);
        let r = &reds[0];
        assert_eq!(r.op, RedOp::Sum);
        assert_eq!(r.var, s);
        assert_eq!(r.operand.as_ref().unwrap().array, a);
        // Carried by the j loop.
        assert_eq!(p.loop_var(r.loop_id), Some(j));
    }

    #[test]
    fn maxloc_dgefa_pattern() {
        // do j { if (ABS(A(j)) > tmax) { tmax = ABS(A(j)); l = j } }
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let j = b.int_scalar("j");
        let tmax = b.real_scalar("tmax");
        let lv = b.int_scalar("l");
        b.assign_scalar(tmax, Expr::real(0.0));
        b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
            let cand = Expr::Intrinsic(
                Intrinsic::Abs,
                vec![Expr::array(a, vec![Expr::scalar(j)])],
            );
            b.if_then(cand.clone().cmp(BinOp::Gt, Expr::scalar(tmax)), |b| {
                b.assign_scalar(tmax, cand.clone());
                b.assign_scalar(lv, Expr::scalar(j));
            });
        });
        let p = b.finish();
        let reds = find_reductions(&p);
        assert_eq!(reds.len(), 1);
        let r = &reds[0];
        assert_eq!(r.op, RedOp::MaxLoc);
        assert_eq!(r.var, tmax);
        assert_eq!(r.loc_var, Some(lv));
        assert_eq!(r.operand.as_ref().unwrap().array, a);
    }

    #[test]
    fn operand_reading_accumulator_rejected() {
        let mut b = ProgramBuilder::new();
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
            // s = s + s*2 — not a reduction.
            b.assign_scalar(
                s,
                Expr::scalar(s).add(Expr::scalar(s).mul(Expr::real(2.0))),
            );
        });
        let p = b.finish();
        assert!(find_reductions(&p).is_empty());
    }

    #[test]
    fn extra_use_in_loop_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let d = b.real_array("D", &[8]);
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(
                s,
                Expr::scalar(s).add(Expr::array(a, vec![Expr::scalar(j)])),
            );
            // s escapes into D every iteration: not a plain reduction.
            b.assign_array(d, vec![Expr::scalar(j)], Expr::scalar(s));
        });
        let p = b.finish();
        assert!(find_reductions(&p).is_empty());
    }

    #[test]
    fn max_intrinsic_reduction() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.do_loop(j, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(
                s,
                Expr::Intrinsic(
                    Intrinsic::Max,
                    vec![Expr::scalar(s), Expr::array(a, vec![Expr::scalar(j)])],
                ),
            );
        });
        let p = b.finish();
        let reds = find_reductions(&p);
        assert_eq!(reds.len(), 1);
        assert_eq!(reds[0].op, RedOp::Max);
    }
}
