//! A compact fixed-size bit set used by the dataflow solvers.

/// Fixed-capacity bit set over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub fn capacity(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
    }

    #[test]
    fn union_and_subtract() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(2);
        b.insert(1);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        a.subtract(&b);
        assert!(a.is_clear());
    }
}
