//! Structural control dependence.
//!
//! Section 4 of the paper privatizes the execution of control-flow
//! statements: an `IF`/`GOTO` whose transfers stay inside loop `L` need not
//! force all processors to evaluate its predicate — only the union of
//! processors executing statements *control-dependent* on it. On the
//! structured tree this set is:
//!
//! * for an `IF`: every statement in its branches, plus (for `GOTO`s inside
//!   the branches that jump forward within `L`) the statements they skip;
//! * for a bare `GOTO`: the statements between it and its target within the
//!   enclosing blocks (conservatively, the rest of the enclosing loop
//!   body when the target cannot be localized).

use hpf_ir::{Program, Stmt, StmtId};

/// The controlling `IF` ancestors of a statement, innermost first.
pub fn controllers(p: &Program, s: StmtId) -> Vec<StmtId> {
    let mut out = Vec::new();
    let mut cur = p.parent(s);
    while let Some(c) = cur {
        if matches!(p.stmt(c), Stmt::If { .. }) {
            out.push(c);
        }
        cur = p.parent(c);
    }
    out
}

/// Statements control-dependent on control statement `s` (conservative
/// superset on the structured tree).
pub fn dependents(p: &Program, s: StmtId) -> Vec<StmtId> {
    match p.stmt(s) {
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            let mut out = Vec::new();
            for b in [then_body, else_body] {
                for &c in b {
                    collect_subtree(p, c, &mut out);
                }
            }
            // GOTOs under this IF extend control dependence to skipped
            // statements.
            for g in out.clone() {
                if matches!(p.stmt(g), Stmt::Goto(_)) {
                    for extra in goto_skipped(p, g) {
                        if !out.contains(&extra) {
                            out.push(extra);
                        }
                    }
                }
            }
            out
        }
        Stmt::Goto(_) => goto_skipped(p, s),
        _ => Vec::new(),
    }
}

fn collect_subtree(p: &Program, s: StmtId, out: &mut Vec<StmtId>) {
    if !out.contains(&s) {
        out.push(s);
    }
    for b in p.stmt(s).blocks() {
        for &c in b {
            collect_subtree(p, c, out);
        }
    }
}

/// Statements a `GOTO` may skip: for a forward jump to a label in an
/// enclosing block, the statements strictly between the goto's position
/// (at that block level) and the target; otherwise (backward jumps), the
/// whole enclosing loop body, conservatively.
fn goto_skipped(p: &Program, g: StmtId) -> Vec<StmtId> {
    let Some(target) = p.goto_target(g) else {
        return Vec::new();
    };
    // Walk up from the goto until we find the block that contains the
    // target.
    let mut hop = g;
    loop {
        let (block, pos) = p.containing_block(hop);
        if let Some(tpos) = block.iter().position(|&x| x == target) {
            let mut out = Vec::new();
            if tpos > pos {
                for &mid in &block[pos + 1..tpos] {
                    collect_subtree(p, mid, &mut out);
                }
            } else {
                // Backward jump: conservatively everything in this block.
                for &mid in block {
                    collect_subtree(p, mid, &mut out);
                }
            }
            return out;
        }
        match p.parent(hop) {
            Some(par) => hop = par,
            None => return Vec::new(),
        }
    }
}

/// Is statement `t` (transitively) control-dependent on `s`?
pub fn is_dependent(p: &Program, s: StmtId, t: StmtId) -> bool {
    dependents(p, s).contains(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{BinOp, Expr, ProgramBuilder};

    #[test]
    fn if_branches_are_dependent() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let c = b.bool_scalar("c");
        let mut t = None;
        let mut e = None;
        let iff = b.if_then_else(
            Expr::scalar(c),
            |b| {
                t = Some(b.assign_scalar(x, Expr::real(1.0)));
            },
            |b| {
                e = Some(b.assign_scalar(x, Expr::real(2.0)));
            },
        );
        let after = b.assign_scalar(x, Expr::real(3.0));
        let p = b.finish();
        let deps = dependents(&p, iff);
        assert!(deps.contains(&t.unwrap()));
        assert!(deps.contains(&e.unwrap()));
        assert!(!deps.contains(&after));
        assert_eq!(controllers(&p, t.unwrap()), vec![iff]);
        assert!(controllers(&p, after).is_empty());
    }

    #[test]
    fn forward_goto_skips_statements() {
        // Figure 7 shape: if (cond) goto 100; S1; S2; 100 continue
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        let a = b.real_array("A", &[8]);
        let mut s1 = None;
        let mut s2 = None;
        let mut goto_id = None;
        b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.if_then(
                Expr::array(a, vec![Expr::scalar(i)]).cmp(BinOp::Lt, Expr::real(0.0)),
                |b| {
                    goto_id = Some(b.goto(100));
                },
            );
            s1 = Some(b.assign_array(a, vec![Expr::scalar(i)], Expr::real(1.0)));
            s2 = Some(b.assign_array(a, vec![Expr::scalar(i)], Expr::real(2.0)));
            b.continue_label(100);
        });
        let p = b.finish();
        let deps = dependents(&p, goto_id.unwrap());
        assert!(deps.contains(&s1.unwrap()));
        assert!(deps.contains(&s2.unwrap()));
        // The IF's dependents include the skipped statements via the GOTO.
        let iff = p.parent(goto_id.unwrap()).unwrap();
        let ifdeps = dependents(&p, iff);
        assert!(ifdeps.contains(&s1.unwrap()));
    }

    #[test]
    fn nested_if_controllers() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let c = b.bool_scalar("c");
        let mut inner_stmt = None;
        let mut inner_if = None;
        let outer_if = b.if_then(Expr::scalar(c), |b| {
            inner_if = Some(b.if_then(Expr::scalar(c), |b| {
                inner_stmt = Some(b.assign_scalar(x, Expr::real(1.0)));
            }));
        });
        let p = b.finish();
        assert_eq!(
            controllers(&p, inner_stmt.unwrap()),
            vec![inner_if.unwrap(), outer_if]
        );
        assert!(is_dependent(&p, outer_if, inner_stmt.unwrap()));
    }
}
