//! Live-variable analysis for scalars (backward dataflow).
//!
//! The privatizability check needs "is the scalar live outside the loop":
//! if a value assigned inside the loop can be read after the loop exits,
//! privatizing it without copy-out would change program semantics.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use hpf_ir::visit::collect_stmt_scalar_reads;
use hpf_ir::{Program, StmtId, VarId};

/// Liveness solution: live-in set per CFG node (bit per scalar `VarId`).
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    nvars: usize,
}

impl Liveness {
    pub fn compute(p: &Program, cfg: &Cfg) -> Liveness {
        let nvars = p.vars.len();
        let nn = cfg.len();
        let mut use_sets = vec![BitSet::new(nvars); nn];
        let mut def_sets = vec![BitSet::new(nvars); nn];
        for ni in 0..nn {
            if let Some(s) = cfg.stmt_of(NodeId(ni as u32)) {
                let mut reads = Vec::new();
                collect_stmt_scalar_reads(p.stmt(s), s, &mut reads);
                for r in reads {
                    use_sets[ni].insert(r.var.index());
                }
                if let Some(v) = p.stmt(s).written_var() {
                    def_sets[ni].insert(v.index());
                }
            }
        }
        let mut live_in = vec![BitSet::new(nvars); nn];
        let mut live_out = vec![BitSet::new(nvars); nn];
        // Iterate backward (post-order ≈ reverse RPO).
        let order: Vec<NodeId> = cfg.rpo().into_iter().rev().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &n in &order {
                let ni = n.index();
                let mut newout = BitSet::new(nvars);
                for &s in &cfg.nodes[ni].succs {
                    newout.union_with(&live_in[s.index()]);
                }
                let mut newin = newout.clone();
                newin.subtract(&def_sets[ni]);
                newin.union_with(&use_sets[ni]);
                if newout != live_out[ni] {
                    live_out[ni] = newout;
                    changed = true;
                }
                if newin != live_in[ni] {
                    live_in[ni] = newin;
                    changed = true;
                }
            }
        }
        Liveness { live_in, nvars }
    }

    pub fn live_in(&self, n: NodeId, var: VarId) -> bool {
        self.live_in[n.index()].contains(var.index())
    }

    /// Is `var` live on some path that leaves loop `l`? Considers every CFG
    /// edge from a node inside the loop subtree (or its header) to a node
    /// outside it — including `GOTO`s that jump out of the loop.
    pub fn live_after_loop(&self, p: &Program, cfg: &Cfg, l: StmtId, var: VarId) -> bool {
        debug_assert!(p.stmt(l).is_loop());
        let inside = |s: StmtId| p.is_self_or_ancestor(l, s);
        for (ni, node) in cfg.nodes.iter().enumerate() {
            let from_inside = match cfg.stmt_of(NodeId(ni as u32)) {
                Some(s) => inside(s),
                None => false,
            };
            if !from_inside {
                continue;
            }
            for &succ in &node.succs {
                let to_outside = match cfg.stmt_of(succ) {
                    Some(s) => !inside(s),
                    None => succ == cfg.exit,
                };
                if to_outside && self.live_in[succ.index()].contains(var.index()) {
                    return true;
                }
            }
        }
        false
    }

    pub fn nvars(&self) -> usize {
        self.nvars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{Expr, ProgramBuilder};

    #[test]
    fn scalar_dead_after_loop() {
        // do i { x = A(i); B(i) = x }  — x not live after the loop.
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let bb = b.real_array("B", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(x, Expr::array(a, vec![Expr::scalar(i)]));
            b.assign_array(bb, vec![Expr::scalar(i)], Expr::scalar(x));
        });
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let lv = Liveness::compute(&p, &cfg);
        assert!(!lv.live_after_loop(&p, &cfg, lp, x));
    }

    #[test]
    fn scalar_live_after_loop() {
        // do i { x = A(i) } ; y = x — x live after the loop.
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(x, Expr::array(a, vec![Expr::scalar(i)]));
        });
        b.assign_scalar(y, Expr::scalar(x));
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let lv = Liveness::compute(&p, &cfg);
        assert!(lv.live_after_loop(&p, &cfg, lp, x));
    }

    #[test]
    fn live_through_goto_exit() {
        // do i { x = A(i); if (...) goto 100 } ; ... ; 100 y = x
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let i = b.int_scalar("i");
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_scalar(x, Expr::array(a, vec![Expr::scalar(i)]));
            b.if_then(
                Expr::scalar(x).cmp(hpf_ir::BinOp::Gt, Expr::real(0.5)),
                |b| {
                    b.goto(100);
                },
            );
            // overwrite x before the back edge so it is NOT live around it
            b.assign_scalar(x, Expr::real(0.0));
        });
        b.assign_scalar(y, Expr::real(0.0));
        let tgt = b.assign_scalar(y, Expr::scalar(x));
        b.label_stmt(tgt, 100);
        let p = b.finish();
        let cfg = Cfg::build(&p);
        let lv = Liveness::compute(&p, &cfg);
        assert!(lv.live_after_loop(&p, &cfg, lp, x));
    }
}
