//! Additional hpf-analysis coverage: SSA frontiers on irregular CFGs,
//! liveness through nested control, reductions inside deeper nests,
//! induction interactions.

use hpf_analysis::{Analysis, Privatizable, RedOp};
use hpf_ir::{parse_program, Program, StmtId};

fn loop_of(p: &Program, var: &str) -> StmtId {
    let v = p.vars.lookup(var).unwrap();
    p.preorder()
        .into_iter()
        .find(|&s| p.loop_var(s) == Some(v))
        .unwrap()
}

#[test]
fn nested_reductions_both_recognized() {
    let src = r#"
REAL A(8,8)
INTEGER i, j
REAL rowsum, total
total = 0.0
DO i = 1, 8
  rowsum = 0.0
  DO j = 1, 8
    rowsum = rowsum + A(i,j)
  END DO
  total = total + rowsum
END DO
"#;
    let p = parse_program(src).unwrap();
    let a = Analysis::run(&p);
    assert_eq!(a.reductions.len(), 2);
    let ops: Vec<RedOp> = a.reductions.iter().map(|r| r.op).collect();
    assert!(ops.iter().all(|&o| o == RedOp::Sum));
    // The inner reduction's operand is A(i,j); the outer's is the scalar
    // rowsum (no array operand).
    let inner = a
        .reductions
        .iter()
        .find(|r| p.loop_var(r.loop_id) == p.vars.lookup("j"))
        .unwrap();
    assert!(inner.operand.is_some());
    let outer = a
        .reductions
        .iter()
        .find(|r| p.loop_var(r.loop_id) == p.vars.lookup("i"))
        .unwrap();
    assert!(outer.operand.is_none());
}

#[test]
fn induction_variables_multiple_in_one_loop() {
    let src = r#"
REAL D(64)
INTEGER i, m, k2
m = 0
k2 = 10
DO i = 1, 8
  m = m + 1
  k2 = k2 + 2
  D(m) = 1.0
  D(k2) = 2.0
END DO
"#;
    let p = parse_program(src).unwrap();
    let a = Analysis::run(&p);
    let l = loop_of(&p, "i");
    let m = p.vars.lookup("m").unwrap();
    let k2 = p.vars.lookup("k2").unwrap();
    let ivm = a.induction.of(l, m).unwrap();
    let ivk = a.induction.of(l, k2).unwrap();
    assert_eq!((ivm.init, ivm.step), (0, 1));
    assert_eq!((ivk.init, ivk.step), (10, 2));
    // Closed forms: m = i, k2 = 10 + 2i.
    let i = p.vars.lookup("i").unwrap();
    assert_eq!(ivm.after.coeff(i), 1);
    assert_eq!(ivm.after.c0, 0);
    assert_eq!(ivk.after.coeff(i), 2);
    assert_eq!(ivk.after.c0, 10);
}

#[test]
fn privatizability_with_partial_redefinition() {
    // t defined on both branches before use: privatizable; defined on only
    // one branch: cross-iteration flow possible -> rejected.
    let both = r#"
REAL A(8), B(8), D(8)
INTEGER i
REAL t
DO i = 1, 8
  IF (B(i) > 0.0) THEN
    t = B(i)
  ELSE
    t = A(i)
  END IF
  D(i) = t
END DO
"#;
    let p = parse_program(both).unwrap();
    let a = Analysis::run(&p);
    let mut pc = a.priv_check();
    let l = loop_of(&p, "i");
    let t = p.vars.lookup("t").unwrap();
    for def in hpf_ir::visit::defs_of(&p, t) {
        assert!(
            pc.scalar_privatizable(l, def).without_copy_out(),
            "both-branch def {:?}",
            def
        );
    }

    let one = r#"
REAL A(8), B(8), D(8)
INTEGER i
REAL t
t = 0.0
DO i = 1, 8
  IF (B(i) > 0.0) THEN
    t = B(i)
  END IF
  D(i) = t
END DO
"#;
    let p2 = parse_program(one).unwrap();
    let a2 = Analysis::run(&p2);
    let mut pc2 = a2.priv_check();
    let l2 = loop_of(&p2, "i");
    let t2 = p2.vars.lookup("t").unwrap();
    let def_in_loop = hpf_ir::visit::defs_of(&p2, t2)
        .into_iter()
        .find(|&d| p2.nesting_level(d) > 0)
        .unwrap();
    assert_eq!(
        pc2.scalar_privatizable(l2, def_in_loop),
        Privatizable::No,
        "single-branch def leaks the previous iteration's value"
    );
}

#[test]
fn ssa_phis_for_branchy_loop() {
    let src = r#"
REAL B(8), D(8)
INTEGER i
REAL t
DO i = 1, 8
  IF (B(i) > 0.0) THEN
    t = B(i)
  ELSE
    t = -B(i)
  END IF
  D(i) = t
END DO
"#;
    let p = parse_program(src).unwrap();
    let a = Analysis::run(&p);
    let t = p.vars.lookup("t").unwrap();
    // One phi at the IF join (t is dead around the back edge, so no
    // header phi survives pruning).
    let phis: Vec<_> = a.ssa.phis_of(t).collect();
    assert_eq!(phis.len(), 1, "{:?}", phis);
}

#[test]
fn controldep_through_else_branch() {
    let src = r#"
REAL A(8), B(8)
INTEGER i
DO i = 1, 8
  IF (B(i) > 0.0) THEN
    A(i) = 1.0
  ELSE
    IF (B(i) < -1.0) THEN
      A(i) = 2.0
    END IF
  END IF
END DO
"#;
    let p = parse_program(src).unwrap();
    let ifs: Vec<_> = p
        .preorder()
        .into_iter()
        .filter(|&s| matches!(p.stmt(s), hpf_ir::Stmt::If { .. }))
        .collect();
    let outer_deps = hpf_analysis::controldep::dependents(&p, ifs[0]);
    // The inner IF and both assignments are dependent on the outer IF.
    assert!(outer_deps.contains(&ifs[1]));
    assert_eq!(
        outer_deps
            .iter()
            .filter(|&&s| p.stmt(s).is_assign())
            .count(),
        2
    );
}

#[test]
fn reaching_defs_through_goto() {
    let src = r#"
REAL B(8)
INTEGER i
REAL t, u
DO i = 1, 8
  t = 1.0
  IF (B(i) > 0.0) GOTO 50
  t = 2.0
50 CONTINUE
  u = t
END DO
"#;
    let p = parse_program(src).unwrap();
    let a = Analysis::run(&p);
    let t = p.vars.lookup("t").unwrap();
    let u_def = hpf_ir::visit::defs_of(&p, p.vars.lookup("u").unwrap())[0];
    let defs = a.rd.reaching_defs(&a.cfg, u_def, t);
    assert_eq!(defs.len(), 2, "both t defs reach the use via the goto");
}

#[test]
fn memory_carried_inference_via_no_value_deps() {
    // NO_VALUE_DEPS lets the compiler infer C's privatizability without a
    // NEW clause (Sec. 3.1's weaker directive).
    let src = r#"
REAL R(8,8), C(8)
INTEGER i, k
!HPF$ NO_VALUE_DEPS
DO k = 1, 8
  DO i = 1, 8
    C(i) = R(i,k) * 0.5
  END DO
  DO i = 1, 8
    R(i,k) = C(i)
  END DO
END DO
"#;
    let p = parse_program(src).unwrap();
    let a = Analysis::run(&p);
    let mut pc = a.priv_check();
    let l = loop_of(&p, "k");
    let c = p.vars.lookup("c").unwrap();
    assert!(pc.array_privatizable(&a.dom, &a.induction, l, c));
}
