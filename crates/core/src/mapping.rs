//! The scalar mapping algorithm — the paper's Figure 3 (`DetermineMapping`)
//! and Section 2.2.
//!
//! For every privatizable scalar definition the algorithm chooses among
//! privatization without alignment, alignment with a consumer reference,
//! alignment with a producer reference, and replication (the default),
//! guided by the communication analysis: a consumer alignment is preferred
//! unless it would leave *inner-loop* communication for some rhs operand
//! of the defining statement (communication that message vectorization
//! cannot hoist), in which case a partitioned producer reference is chosen
//! instead.
//!
//! The three policies correspond to the compiler versions evaluated in the
//! paper's Table 1.

use crate::consumer::{consumers_for_use, ConsumerRef};
use crate::decision::{Decisions, ScalarMapping};
use hpf_analysis::{Analysis, PrivCheck};
use hpf_comm::pattern::{classify, symbolic_owner, CommPattern};
use hpf_comm::placement::{align_level, place_comm};
use hpf_dist::MappingTable;
use hpf_ir::{ArrayRef, Expr, LValue, Program, Stmt, StmtId, VarId};
use std::collections::HashSet;

/// Scalar-mapping policy: the paper's three compiler versions (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarPolicy {
    /// "The most naive version of the compiler ... replicates all scalar
    /// variables."
    Replication,
    /// "Performs privatization, but always aligns each scalar definition
    /// with a producer reference."
    ProducerAlign,
    /// "Applies the algorithm described in Section 2.2" — the paper's
    /// contribution.
    Selected,
}

/// Configuration of the whole mapping phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    pub scalar_policy: ScalarPolicy,
    /// Section 2.3 reduction mapping (Table 2's "Alignment" column).
    pub reduction_align: bool,
    /// Section 3.1 array privatization (Table 3).
    pub array_priv: bool,
    /// Section 3.2 partial privatization (Table 3).
    pub partial_priv: bool,
    /// Section 4 privatized execution of control flow.
    pub privatize_control: bool,
    /// Automatic array privatization (the paper's stated future work):
    /// infer privatizability without `NEW` clauses via the Tu–Padua-style
    /// coverage test in `hpf_analysis::autopriv`.
    pub auto_array_priv: bool,
    /// Ablation: always take the consumer alignment when one exists,
    /// skipping Fig. 3's "leads to inner loop communication" check that
    /// falls back to a producer reference. Isolates the value of the
    /// paper's cost-model-guided preference rule.
    pub prefer_consumer_always: bool,
}

impl CoreConfig {
    /// Everything on — the paper's full system.
    pub fn full() -> CoreConfig {
        CoreConfig {
            scalar_policy: ScalarPolicy::Selected,
            reduction_align: true,
            array_priv: true,
            partial_priv: true,
            privatize_control: true,
            auto_array_priv: false,
            prefer_consumer_always: false,
        }
    }

    /// The full system plus automatic array privatization.
    pub fn full_auto() -> CoreConfig {
        let mut c = CoreConfig::full();
        c.auto_array_priv = true;
        c
    }

    /// The naive baseline.
    pub fn naive() -> CoreConfig {
        CoreConfig {
            scalar_policy: ScalarPolicy::Replication,
            reduction_align: false,
            array_priv: false,
            partial_priv: false,
            privatize_control: false,
            auto_array_priv: false,
            prefer_consumer_always: false,
        }
    }
}

/// Outcome of consumer-reference selection across the reached uses.
enum ConsumerSel {
    /// Some use needs the value everywhere: stay replicated.
    ForcedReplicated,
    Found(StmtId, ArrayRef),
    None,
}

pub(crate) struct ScalarMapper<'a, 'p> {
    p: &'p Program,
    a: &'a Analysis<'p>,
    maps: &'a MappingTable,
    cfg: CoreConfig,
    pc: PrivCheck<'a>,
    visited: HashSet<StmtId>,
    in_progress: HashSet<StmtId>,
    no_align_exam: Vec<StmtId>,
}

impl<'a, 'p> ScalarMapper<'a, 'p> {
    pub fn new(
        p: &'p Program,
        a: &'a Analysis<'p>,
        maps: &'a MappingTable,
        cfg: CoreConfig,
    ) -> Self {
        ScalarMapper {
            p,
            a,
            maps,
            cfg,
            pc: a.priv_check(),
            visited: HashSet::new(),
            in_progress: HashSet::new(),
            no_align_exam: Vec::new(),
        }
    }

    /// Run the pass over every scalar definition, then re-examine the
    /// privatization-without-alignment candidates (the deferral explained
    /// in Sec. 2.2: rhs references to not-yet-mapped privatizable scalars
    /// "appear to be replicated at this stage").
    pub fn run(&mut self, d: &mut Decisions) {
        if self.cfg.scalar_policy == ScalarPolicy::Replication {
            return;
        }
        for s in self.p.preorder() {
            if is_scalar_def(self.p, s) && !d.scalars.contains_key(&s) {
                self.determine(s, d);
            }
        }
        // Final NoAlignExam pass.
        for def in std::mem::take(&mut self.no_align_exam) {
            if self.rhs_all_replicated(def, d) {
                d.set_scalar(def, ScalarMapping::PrivateNoAlign);
            }
        }
    }

    /// The paper's `DetermineMapping(def, stmt)`.
    fn determine(&mut self, def: StmtId, d: &mut Decisions) {
        if self.visited.contains(&def) || self.in_progress.contains(&def) {
            return;
        }
        self.in_progress.insert(def);
        self.determine_inner(def, d);
        self.in_progress.remove(&def);
        self.visited.insert(def);
    }

    fn determine_inner(&mut self, def: StmtId, d: &mut Decisions) {
        if d.scalars.contains_key(&def) {
            return; // e.g. mapped by the reduction pass
        }
        // Induction variables are privatized without alignment; their
        // closed forms stand in for their values (Sec. 2.1).
        if self.a.induction.is_induction_def(def) {
            d.set_scalar(def, ScalarMapping::PrivateNoAlign);
            return;
        }
        // Reduction statements are handled by the Sec. 2.3 pass; if that
        // pass is disabled they stay replicated (the Table 2 baseline).
        if self.a.reduction_at(def).is_some() {
            return;
        }
        let loops = self.p.enclosing_loops(def);
        let Some(&l) = loops.last() else {
            return; // outside any loop: replicated
        };
        // Privatizability check (IsPrivatizable of Fig. 3). The innermost
        // loop is tried first; privatization w.r.t. it suffices for the
        // mapping to be iteration-local.
        if !self.pc.scalar_privatizable(l, def).without_copy_out() {
            return;
        }

        let rhs_replicated = self.rhs_all_replicated(def, d);

        if self.cfg.scalar_policy == ScalarPolicy::ProducerAlign {
            if let Some((ps, pr)) = self.select_producer(def, d) {
                self.align_closure(def, ps, pr, false, l, d);
            } else if rhs_replicated && self.a.rd.is_unique_def(self.p, &self.a.cfg, def) {
                d.set_scalar(def, ScalarMapping::PrivateNoAlign);
            }
            return;
        }

        // ---- Fig. 3, Selected policy ----
        if rhs_replicated && self.a.rd.is_unique_def(self.p, &self.a.cfg, def) {
            self.no_align_exam.push(def);
        }
        let mut align: Option<(StmtId, ArrayRef, bool)> = None;
        match self.select_consumer(def, d) {
            ConsumerSel::ForcedReplicated => {
                // Some use needs the value on every processor (loop bound
                // or broadcast subscript): the definition must stay
                // replicated — including withdrawing it from the
                // privatization-without-alignment candidates.
                self.no_align_exam.retain(|&x| x != def);
                return;
            }
            ConsumerSel::Found(ts, tr) => align = Some((ts, tr, true)),
            ConsumerSel::None => {}
        }
        if !rhs_replicated && !self.cfg.prefer_consumer_always {
            let consumer_bad = match &align {
                None => true,
                Some((ts, tr, _)) => self.alignment_causes_inner_loop_comm(def, *ts, tr, d),
            };
            if consumer_bad {
                if let Some((ps, pr)) = self.select_producer(def, d) {
                    align = Some((ps, pr, false));
                }
            }
        }
        if let Some((ts, tr, from_consumer)) = align {
            self.align_closure(def, ts, tr, from_consumer, l, d);
        }
    }

    /// Are all rhs operands of `def`'s statement replicated (in the sense
    /// of the paper: replicated arrays; scalars that are replicated,
    /// privatized without alignment, or loop indices)?
    fn rhs_all_replicated(&mut self, def: StmtId, d: &mut Decisions) -> bool {
        let Stmt::Assign { rhs, .. } = self.p.stmt(def) else {
            return false;
        };
        let rhs = rhs.clone();
        // Array operands.
        for r in rhs.array_refs() {
            if !self.maps.of(r.array).is_fully_replicated() {
                return false;
            }
        }
        // Scalar operands.
        for w in rhs.scalar_reads() {
            if self.scalar_operand_mapping(def, w, d).is_some() {
                return false;
            }
        }
        true
    }

    /// The alignment target of a scalar operand `w` read at `at`, if the
    /// operand is mapped to partitioned data. `None` means the operand is
    /// available locally (replicated / private / loop index / induction).
    ///
    /// Deliberately NOT recursive: the paper's Sec. 2.2 deferral — "there
    /// may be rhs references to privatizable scalar or array variables ...
    /// for which mapping decisions have not yet been made, so those
    /// variables appear to be replicated at this stage" — with the
    /// `NoAlignExam` list re-examined at the end of the pass. (Recursing
    /// here lets sibling-operand cycles contaminate consumer chains.)
    fn scalar_operand_mapping(
        &mut self,
        at: StmtId,
        w: VarId,
        d: &mut Decisions,
    ) -> Option<(StmtId, ArrayRef)> {
        // Loop indices of enclosing loops are known everywhere.
        if self
            .p
            .enclosing_loops(at)
            .iter()
            .any(|&l| self.p.loop_var(l) == Some(w))
        {
            return None;
        }
        let defs = self.a.rd.reaching_defs(&self.a.cfg, at, w);
        for rdef in defs {
            if self.p.stmt(rdef).is_loop() {
                // Value left over from a DO index: known everywhere.
                continue;
            }
            match d.scalar(rdef) {
                ScalarMapping::Replicated | ScalarMapping::PrivateNoAlign => {}
                ScalarMapping::Aligned {
                    target, target_stmt, ..
                }
                | ScalarMapping::Reduction {
                    target, target_stmt, ..
                } => return Some((*target_stmt, target.clone())),
            }
        }
        None
    }

    /// Traverse the reached uses of `def` and select a consumer reference
    /// (Sec. 2.2, "Identification of Alignment Target").
    fn select_consumer(&mut self, def: StmtId, d: &mut Decisions) -> ConsumerSel {
        let Some(var) = self.a.rd.def_var(def) else {
            return ConsumerSel::None;
        };
        let uses = self.a.rd.reached_uses(self.p, &self.a.cfg, def);
        let mut best: Option<(i64, StmtId, ArrayRef)> = None;
        for u in uses {
            for c in consumers_for_use(self.p, self.a, self.maps, u, var) {
                match c {
                    ConsumerRef::Replicated => return ConsumerSel::ForcedReplicated,
                    ConsumerRef::Ref { stmt, r } => {
                        if !self.maps.of(r.array).is_fully_replicated() {
                            self.consider(&mut best, def, stmt, r);
                        }
                        // Consumer references to replicated data are
                        // ignored (paper Sec. 2.2).
                    }
                    ConsumerRef::ScalarLhs { stmt, .. } => {
                        // Recursively map the privatizable consumer scalar
                        // and use its target as the consumer reference.
                        self.determine(stmt, d);
                        if let Some((ts, tr)) = d.scalar(stmt).align_target().map(|(r, s)| (s, r.clone())) {
                            self.consider(&mut best, def, ts, tr);
                        }
                    }
                }
            }
        }
        match best {
            Some((_, s, r)) => ConsumerSel::Found(s, r),
            None => ConsumerSel::None,
        }
    }

    /// Scoring: favour "a reference in which a distributed array dimension
    /// is traversed in the innermost common loop enclosing the scalar
    /// definition and the reached use" (Sec. 2.2) — alignment with such a
    /// reference maps the scalar to different processors in different
    /// iterations.
    fn consider(
        &self,
        best: &mut Option<(i64, StmtId, ArrayRef)>,
        def: StmtId,
        stmt: StmtId,
        r: ArrayRef,
    ) {
        let score = self.score_ref(def, stmt, &r);
        match best {
            Some((b, ..)) if *b >= score => {}
            _ => *best = Some((score, stmt, r)),
        }
    }

    fn score_ref(&self, def: StmtId, stmt: StmtId, r: &ArrayRef) -> i64 {
        let common = self
            .p
            .innermost_common_loop(def, stmt)
            .map(|(l, _)| l);
        let mapping = self.maps.of(r.array);
        let mut score = 0;
        for (g, _) in mapping.rules.iter().enumerate() {
            let Some(adim) = mapping.array_dim_of_grid_dim(g) else {
                continue;
            };
            let Some(sub) = r.subs.get(adim) else { continue };
            let Some(aff) =
                self.a
                    .induction
                    .affine_view(self.p, &self.a.cfg, &self.a.dom, stmt, sub)
            else {
                continue;
            };
            for v in aff.vars() {
                if let Some(cl) = common {
                    if self.p.loop_var(cl) == Some(v) {
                        score = score.max(2);
                        continue;
                    }
                }
                if self
                    .p
                    .enclosing_loops(stmt)
                    .iter()
                    .any(|&l| self.p.loop_var(l) == Some(v))
                {
                    score = score.max(1);
                }
            }
        }
        score
    }

    /// Select a partitioned producer reference on `def`'s own statement:
    /// a distributed rhs array reference, or a scalar operand aligned to
    /// partitioned data.
    fn select_producer(
        &mut self,
        def: StmtId,
        d: &mut Decisions,
    ) -> Option<(StmtId, ArrayRef)> {
        let Stmt::Assign { rhs, .. } = self.p.stmt(def) else {
            return None;
        };
        let rhs: Expr = rhs.clone();
        let mut best: Option<(i64, StmtId, ArrayRef)> = None;
        for r in rhs.array_refs() {
            if !self.maps.of(r.array).is_fully_replicated() {
                self.consider(&mut best, def, def, r.clone());
            }
        }
        for w in rhs.scalar_reads() {
            if let Some((ts, tr)) = self.scalar_operand_mapping(def, w, d) {
                self.consider(&mut best, def, ts, tr);
            }
        }
        best.map(|(_, s, r)| (s, r))
    }

    /// Would aligning `def` with `target` leave inner-loop communication
    /// for some rhs operand of `def`'s statement (Fig. 3's test)?
    fn alignment_causes_inner_loop_comm(
        &mut self,
        def: StmtId,
        target_stmt: StmtId,
        target: &ArrayRef,
        d: &mut Decisions,
    ) -> bool {
        let Stmt::Assign { rhs, .. } = self.p.stmt(def) else {
            return false;
        };
        let rhs = rhs.clone();
        let Some(dst) = symbolic_owner(
            self.p,
            &self.a.cfg,
            &self.a.dom,
            &self.a.induction,
            self.maps.of(target.array),
            target_stmt,
            target,
        ) else {
            return true;
        };
        // Array operands: non-local && non-vectorizable ⇒ inner-loop comm.
        for r in rhs.array_refs() {
            let m = self.maps.of(r.array);
            if m.is_fully_replicated() {
                continue;
            }
            let src = symbolic_owner(
                self.p,
                &self.a.cfg,
                &self.a.dom,
                &self.a.induction,
                m,
                def,
                r,
            );
            let local = matches!(
                src.as_ref().map(|s| classify(s, &dst)),
                Some(CommPattern::Local)
            );
            if local {
                continue;
            }
            let pl = place_comm(
                self.p,
                &self.a.cfg,
                &self.a.dom,
                &self.a.induction,
                m,
                def,
                r,
            );
            if pl.is_inner_loop() {
                return true;
            }
        }
        // Scalar operands produced in the loop and mapped elsewhere cannot
        // be vectorized at all.
        for w in rhs.scalar_reads() {
            if let Some((ts, tr)) = self.scalar_operand_mapping(def, w, d) {
                let src = symbolic_owner(
                    self.p,
                    &self.a.cfg,
                    &self.a.dom,
                    &self.a.induction,
                    self.maps.of(tr.array),
                    ts,
                    &tr,
                );
                let local = matches!(
                    src.as_ref().map(|s| classify(s, &dst)),
                    Some(CommPattern::Local)
                );
                if !local {
                    return true;
                }
            }
        }
        false
    }

    /// Record the alignment for `def` and, for mapping consistency
    /// (Sec. 2.2), for every reaching definition of every reached use —
    /// provided the alignment is valid at the privatization level
    /// (`AlignLevel(r) <= l`).
    fn align_closure(
        &mut self,
        def: StmtId,
        target_stmt: StmtId,
        target: ArrayRef,
        from_consumer: bool,
        l: StmtId,
        d: &mut Decisions,
    ) {
        let priv_level = self.p.nesting_level(l) + 1;
        let al = align_level(
            self.p,
            &self.a.cfg,
            &self.a.dom,
            &self.a.induction,
            self.maps.of(target.array),
            target_stmt,
            &target,
            None,
        );
        if al > priv_level {
            return; // alignment not valid inside the privatization loop
        }
        let Some(var) = self.a.rd.def_var(def) else {
            return;
        };
        // Closure: def plus all reaching defs of its reached uses.
        let mut closure = vec![def];
        let mut i = 0;
        while i < closure.len() {
            let cur = closure[i];
            i += 1;
            for u in self.a.rd.reached_uses(self.p, &self.a.cfg, cur) {
                for rd in self.a.rd.reaching_defs(&self.a.cfg, u, var) {
                    if !closure.contains(&rd) && !self.p.stmt(rd).is_loop() {
                        closure.push(rd);
                    }
                }
            }
        }
        for c in closure {
            d.set_scalar(
                c,
                ScalarMapping::Aligned {
                    target_stmt,
                    target: target.clone(),
                    from_consumer,
                },
            );
            self.visited.insert(c);
        }
    }
}

fn is_scalar_def(p: &Program, s: StmtId) -> bool {
    matches!(
        p.stmt(s),
        Stmt::Assign {
            lhs: LValue::Scalar(_),
            ..
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    fn figure1_program() -> Program {
        parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(20), B(20), C(20), D(20), E(20), F(20)
INTEGER i, m
REAL x, y, z
m = 2
DO i = 2, 19
  m = m + 1
  x = B(i) + C(i)
  y = A(i) + B(i)
  z = E(i) + F(i)
  A(i+1) = y / z
  D(m) = x / z
END DO
"#,
        )
        .unwrap()
    }

    fn def_of(p: &Program, name: &str, nth: usize) -> StmtId {
        let v = p.vars.lookup(name).unwrap();
        hpf_ir::visit::defs_of(p, v)
            .into_iter()
            .filter(|&s| p.stmt(s).is_assign())
            .nth(nth)
            .unwrap()
    }

    /// The headline test: the paper's Figure 1 mapping decisions.
    ///
    /// * `m` — induction variable: privatized without alignment;
    /// * `x` — aligned with the *consumer* `D(m)` (its producers B/C can be
    ///   shift-vectorized out of the loop);
    /// * `y` — aligned with a *producer* (`A(i)`/`B(i)`), because aligning
    ///   with the consumer `A(i+1)` would leave inner-loop communication
    ///   for `A(i)` (A is written in the loop);
    /// * `z` — privatized without alignment (all rhs data replicated).
    #[test]
    fn figure1_mapping_decisions() {
        let p = figure1_program();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut mapper = ScalarMapper::new(&p, &a, &maps, CoreConfig::full());
        mapper.run(&mut d);

        // m (the in-loop update, def #1 of m):
        let m_def = def_of(&p, "m", 1);
        assert_eq!(*d.scalar(m_def), ScalarMapping::PrivateNoAlign, "m");

        // x:
        let x_def = def_of(&p, "x", 0);
        match d.scalar(x_def) {
            ScalarMapping::Aligned {
                target,
                from_consumer,
                ..
            } => {
                assert!(*from_consumer, "x should use consumer alignment");
                assert_eq!(target.array, p.vars.lookup("d").unwrap());
            }
            other => panic!("x: {:?}", other),
        }

        // y:
        let y_def = def_of(&p, "y", 0);
        match d.scalar(y_def) {
            ScalarMapping::Aligned {
                target,
                from_consumer,
                ..
            } => {
                assert!(!*from_consumer, "y should use producer alignment");
                let arr = target.array;
                let an = p.vars.lookup("a").unwrap();
                let bn = p.vars.lookup("b").unwrap();
                assert!(arr == an || arr == bn, "y aligned with A(i) or B(i)");
            }
            other => panic!("y: {:?}", other),
        }

        // z:
        let z_def = def_of(&p, "z", 0);
        assert_eq!(*d.scalar(z_def), ScalarMapping::PrivateNoAlign, "z");
    }

    #[test]
    fn replication_policy_maps_nothing() {
        let p = figure1_program();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut mapper = ScalarMapper::new(&p, &a, &maps, CoreConfig::naive());
        mapper.run(&mut d);
        assert!(d.scalars.is_empty());
        let x_def = def_of(&p, "x", 0);
        assert!(d.scalar(x_def).is_replicated());
    }

    #[test]
    fn producer_policy_aligns_with_producers() {
        let p = figure1_program();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut cfg = CoreConfig::full();
        cfg.scalar_policy = ScalarPolicy::ProducerAlign;
        let mut mapper = ScalarMapper::new(&p, &a, &maps, cfg);
        mapper.run(&mut d);
        // x aligned with producer B(i) (not the consumer D): that is what
        // makes the paper's "Producer Alignment" column slower.
        let x_def = def_of(&p, "x", 0);
        match d.scalar(x_def) {
            ScalarMapping::Aligned {
                target,
                from_consumer,
                ..
            } => {
                assert!(!*from_consumer);
                let arr = target.array;
                assert!(
                    arr == p.vars.lookup("b").unwrap() || arr == p.vars.lookup("c").unwrap()
                );
            }
            other => panic!("x: {:?}", other),
        }
        // z has no partitioned producer: privatized without alignment.
        let z_def = def_of(&p, "z", 0);
        assert_eq!(*d.scalar(z_def), ScalarMapping::PrivateNoAlign);
    }

    #[test]
    fn non_privatizable_scalar_stays_replicated() {
        // Cross-iteration use: do i { D(i) = t; t = B(i) }.
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, D
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16), B(16), D(16)
INTEGER i
REAL t
t = 0.0
DO i = 1, 16
  D(i) = t
  t = B(i)
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut mapper = ScalarMapper::new(&p, &a, &maps, CoreConfig::full());
        mapper.run(&mut d);
        let t_def = def_of(&p, "t", 1);
        assert!(d.scalar(t_def).is_replicated());
    }

    #[test]
    fn scalar_chain_resolved_recursively() {
        // u = B(i); w = u; D(i) = w  — w's consumer is D(i); u's consumer
        // is w, which resolves (recursively) to D(i).
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, D
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16), B(16), D(16)
INTEGER i
REAL u, w
DO i = 1, 16
  u = B(i)
  w = u
  D(i) = w
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut mapper = ScalarMapper::new(&p, &a, &maps, CoreConfig::full());
        mapper.run(&mut d);
        let u_def = def_of(&p, "u", 0);
        let w_def = def_of(&p, "w", 0);
        let dv = p.vars.lookup("d").unwrap();
        for (name, def) in [("u", u_def), ("w", w_def)] {
            match d.scalar(def) {
                ScalarMapping::Aligned { target, .. } => {
                    assert_eq!(target.array, dv, "{} target", name);
                }
                other => panic!("{}: {:?}", name, other),
            }
        }
    }

    #[test]
    fn use_in_loop_bound_forces_replication() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16)
INTEGER i, j, nn
DO i = 1, 4
  nn = i * 2
  DO j = 1, nn
    A(j) = 1.0
  END DO
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        let mut mapper = ScalarMapper::new(&p, &a, &maps, CoreConfig::full());
        mapper.run(&mut d);
        let nn_def = def_of(&p, "nn", 0);
        assert!(d.scalar(nn_def).is_replicated());
    }
}
