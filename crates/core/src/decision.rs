//! Mapping decisions: the output of the paper's algorithm.
//!
//! The phpf compiler "uses the SSA representation to associate a separate
//! mapping decision with each assignment to a scalar" (Sec. 2.2). Here a
//! scalar decision is keyed by the defining [`StmtId`] (one definition per
//! statement), array decisions by `(loop, array)`, and control-flow
//! decisions by the statement.

use hpf_ir::{ArrayRef, Program, StmtId, VarId};
use std::collections::HashMap;
use std::fmt;

/// How one scalar definition is mapped.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarMapping {
    /// Default: a coherent copy everywhere. Under owner-computes the
    /// defining statement executes on all processors and every RHS operand
    /// must be made available everywhere.
    Replicated,
    /// Privatized *without alignment* (paper Sec. 2.1): no computation-
    /// partitioning guard; the statement executes on the union of
    /// processors active in the iteration, each computing a local copy
    /// from replicated operands.
    PrivateNoAlign,
    /// Privatized and aligned with a reference: the owner of
    /// `target` (evaluated at `target_stmt`'s iteration) owns the scalar.
    Aligned {
        target_stmt: StmtId,
        target: ArrayRef,
        /// Whether the target was a consumer or producer reference
        /// (reporting / ablation only — the owner is the same object).
        from_consumer: bool,
    },
    /// Reduction mapping (Sec. 2.3): replicated across `reduce_dims` of
    /// the grid, aligned with `target` in the remaining dimensions; a
    /// private temporary accumulates locally and a combine finishes it.
    Reduction {
        target_stmt: StmtId,
        target: ArrayRef,
        reduce_dims: Vec<usize>,
        /// Location variable for maxloc reductions.
        loc_var: Option<VarId>,
    },
}

impl ScalarMapping {
    pub fn is_replicated(&self) -> bool {
        matches!(self, ScalarMapping::Replicated)
    }

    pub fn is_privatized(&self) -> bool {
        !self.is_replicated()
    }

    pub fn align_target(&self) -> Option<(&ArrayRef, StmtId)> {
        match self {
            ScalarMapping::Aligned {
                target, target_stmt, ..
            }
            | ScalarMapping::Reduction {
                target, target_stmt, ..
            } => Some((target, *target_stmt)),
            _ => None,
        }
    }
}

/// How a privatizable array is mapped with respect to a loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayMappingDecision {
    /// Left as the directives mapped it (not privatized).
    Unchanged,
    /// Fully privatized w.r.t. the loop: an independent copy per processor
    /// (all grid dimensions `Private`).
    FullPrivate {
        /// Alignment target used to validate the scope (reporting).
        target: Option<(StmtId, ArrayRef)>,
    },
    /// Partially privatized (Sec. 3.2): privatized along `private_dims`,
    /// partitioned in the remaining grid dimensions according to the
    /// (array dim → grid dim) pairs in `partition`.
    PartialPrivate {
        private_dims: Vec<usize>,
        /// `(grid_dim, array_dim)` partition pairs retained.
        partition: Vec<(usize, usize)>,
        target: Option<(StmtId, ArrayRef)>,
    },
}

/// Decision for a control-flow statement (Sec. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// True when the statement's execution is privatized (it cannot
    /// transfer control outside its enclosing loop, so it contributes no
    /// computation-partitioning guard).
    pub privatized: bool,
    /// A reference whose owner set must receive any data in the control
    /// predicate: the union of processors executing control-dependent
    /// statements, represented by one of their lhs references when they
    /// all agree.
    pub exec_ref: Option<(StmtId, ArrayRef)>,
}

/// All decisions for one program under one compilation configuration.
#[derive(Debug, Clone, Default)]
pub struct Decisions {
    pub scalars: HashMap<StmtId, ScalarMapping>,
    pub arrays: HashMap<(StmtId, VarId), ArrayMappingDecision>,
    pub controls: HashMap<StmtId, ControlDecision>,
}

impl Decisions {
    /// The mapping of a scalar definition; `Replicated` when undecided.
    pub fn scalar(&self, def: StmtId) -> &ScalarMapping {
        self.scalars.get(&def).unwrap_or(&ScalarMapping::Replicated)
    }

    /// Record a scalar decision.
    pub fn set_scalar(&mut self, def: StmtId, m: ScalarMapping) {
        self.scalars.insert(def, m);
    }

    pub fn array(&self, l: StmtId, v: VarId) -> &ArrayMappingDecision {
        self.arrays
            .get(&(l, v))
            .unwrap_or(&ArrayMappingDecision::Unchanged)
    }

    pub fn control(&self, s: StmtId) -> Option<&ControlDecision> {
        self.controls.get(&s)
    }

    /// Human-readable report of the decisions (used by the compile
    /// driver's `--explain` output and by tests).
    pub fn report(&self, p: &Program) -> String {
        let mut out = String::new();
        let mut scalar_keys: Vec<_> = self.scalars.keys().copied().collect();
        scalar_keys.sort();
        for def in scalar_keys {
            let m = &self.scalars[&def];
            let var = p.stmt(def).written_var().map(|v| p.vars.name(v)).unwrap_or("?");
            out.push_str(&format!("scalar {:>8} @s{:<3} -> {}\n", var, def.0, fmt_scalar(p, m)));
        }
        let mut arr_keys: Vec<_> = self.arrays.keys().copied().collect();
        arr_keys.sort();
        for (l, v) in arr_keys {
            let m = &self.arrays[&(l, v)];
            out.push_str(&format!(
                "array  {:>8} wrt loop s{:<3} -> {}\n",
                p.vars.name(v),
                l.0,
                fmt_array(m)
            ));
        }
        let mut ctl_keys: Vec<_> = self.controls.keys().copied().collect();
        ctl_keys.sort();
        for s in ctl_keys {
            let c = &self.controls[&s];
            out.push_str(&format!(
                "ctrl   s{:<3} -> {}\n",
                s.0,
                if c.privatized { "privatized" } else { "all processors" }
            ));
        }
        out
    }
}

fn fmt_scalar(p: &Program, m: &ScalarMapping) -> String {
    match m {
        ScalarMapping::Replicated => "replicated".into(),
        ScalarMapping::PrivateNoAlign => "private (no alignment)".into(),
        ScalarMapping::Aligned {
            target,
            from_consumer,
            ..
        } => format!(
            "aligned with {} {}",
            if *from_consumer { "consumer" } else { "producer" },
            p.vars.name(target.array)
        ),
        ScalarMapping::Reduction {
            target,
            reduce_dims,
            ..
        } => format!(
            "reduction-mapped on {} (replicated over grid dims {:?})",
            p.vars.name(target.array),
            reduce_dims
        ),
    }
}

fn fmt_array(m: &ArrayMappingDecision) -> String {
    match m {
        ArrayMappingDecision::Unchanged => "unchanged".into(),
        ArrayMappingDecision::FullPrivate { .. } => "fully privatized".into(),
        ArrayMappingDecision::PartialPrivate {
            private_dims,
            partition,
            ..
        } => format!(
            "partially privatized (private grid dims {:?}, partitioned {:?})",
            private_dims, partition
        ),
    }
}

impl fmt::Display for ScalarMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarMapping::Replicated => write!(f, "Replicated"),
            ScalarMapping::PrivateNoAlign => write!(f, "PrivateNoAlign"),
            ScalarMapping::Aligned { from_consumer, .. } => {
                write!(
                    f,
                    "Aligned({})",
                    if *from_consumer { "consumer" } else { "producer" }
                )
            }
            ScalarMapping::Reduction { reduce_dims, .. } => {
                write!(f, "Reduction(dims={:?})", reduce_dims)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{Expr, ProgramBuilder};

    #[test]
    fn defaults_and_report() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let def = b.assign_scalar(x, Expr::real(1.0));
        let p = b.finish();
        let mut d = Decisions::default();
        assert!(d.scalar(def).is_replicated());
        d.set_scalar(def, ScalarMapping::PrivateNoAlign);
        assert!(d.scalar(def).is_privatized());
        let rep = d.report(&p);
        assert!(rep.contains("private (no alignment)"));
    }

    #[test]
    fn align_target_accessor() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[4]);
        let x = b.real_scalar("x");
        let def = b.assign_scalar(x, Expr::real(1.0));
        let _p = b.finish();
        let m = ScalarMapping::Aligned {
            target_stmt: def,
            target: ArrayRef::new(a, vec![Expr::int(1)]),
            from_consumer: true,
        };
        assert_eq!(m.align_target().unwrap().1, def);
        assert!(ScalarMapping::Replicated.align_target().is_none());
    }
}
