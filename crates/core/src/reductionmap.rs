//! Mapping of scalars involved in reductions (paper Sec. 2.3).
//!
//! "Given a statement assigning value to a scalar variable which is
//! recognized as a reduction, the compiler checks if the scalar definition
//! is privatizable without copy-out with respect to the loop immediately
//! surrounding the reduction loop. If so, the special array reference
//! whose ownership governs the partitioning of the partial reduction
//! operation serves as the alignment target. ... the scalar variable is
//! replicated in each dimension over which reduction takes place, and is
//! aligned with the target array reference in only the remaining grid
//! dimensions."
//!
//! This is the optimization behind the paper's Table 2 (DGEFA): with the
//! pivot-search maxloc aligned to the cyclic column `A(:,k)`, the search
//! runs only on the owning processor column instead of on everyone after a
//! broadcast of the column.

use crate::decision::{Decisions, ScalarMapping};
use hpf_analysis::{Analysis, Reduction};
use hpf_dist::MappingTable;
use hpf_ir::{Program, StmtId};

/// Apply Sec. 2.3 to every recognized reduction.
pub fn map_reductions(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    d: &mut Decisions,
) {
    for red in &a.reductions {
        map_one(p, a, maps, red, d);
    }
}

fn map_one(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    red: &Reduction,
    d: &mut Decisions,
) {
    let Some(op_ref) = &red.operand else {
        return; // scalar/replicated operand: nothing to gain
    };
    let mapping = maps.of(op_ref.array);
    if !mapping.is_distributed() {
        return;
    }
    // Privatizability without copy-out w.r.t. the loop immediately
    // surrounding the reduction loop (when there is one).
    let surrounding = p.enclosing_loops(red.loop_id).last().copied();
    if let Some(sl) = surrounding {
        let mut pc = a.priv_check();
        // The accumulation statement is the defining statement considered.
        let acc_def = accumulation_def(red);
        if !pc.scalar_privatizable(sl, acc_def).is_privatizable() {
            return;
        }
    }
    // Reduction dimensions: grid dimensions whose driving subscript varies
    // with the reduction loop's index.
    let red_var = p.loop_var(red.loop_id).expect("reduction loop is a DO");
    let mut reduce_dims = Vec::new();
    for (g, _) in mapping.rules.iter().enumerate() {
        let Some(adim) = mapping.array_dim_of_grid_dim(g) else {
            continue;
        };
        let Some(sub) = op_ref.subs.get(adim) else {
            continue;
        };
        let at = accumulation_def(red);
        match a.induction.affine_view(p, &a.cfg, &a.dom, at, sub) {
            Some(aff) => {
                if aff.depends_on(red_var) {
                    reduce_dims.push(g);
                }
            }
            // Non-affine subscript varying no matter what: be safe and
            // reduce over this dimension too.
            None => reduce_dims.push(g),
        }
    }
    let m = ScalarMapping::Reduction {
        target_stmt: accumulation_def(red),
        target: op_ref.clone(),
        reduce_dims,
        loc_var: red.loc_var,
    };
    // All statements of the reduction get the decision, keyed by each
    // defining statement (the accumulator's and, for maxloc, the location
    // variable's).
    for &s in &red.stmts {
        if p.stmt(s).written_var().is_some() {
            d.set_scalar(s, m.clone());
        }
    }
    // Key by the IF statement too for maxloc, so lowering can find it.
    if red.stmts.len() > 1 {
        d.set_scalar(red.stmts[0], m);
    }
}

fn accumulation_def(red: &Reduction) -> StmtId {
    // For plain accumulations stmts = [assign]; for maxloc stmts =
    // [if, assign, assign]: the accumulator assignment is the second.
    if red.stmts.len() == 1 {
        red.stmts[0]
    } else {
        red.stmts[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    /// Figure 5 of the paper: sum over the second dimension of a
    /// (BLOCK, BLOCK) array — the scalar is replicated along grid dim 1
    /// (the reduction dimension) and aligned with A's row in grid dim 0.
    #[test]
    fn figure5_row_sum() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(2,2)
!HPF$ ALIGN B(i) WITH A(i,1)
!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A
REAL A(8,8), B(8)
INTEGER i, j
REAL s
DO i = 1, 8
  s = 0.0
  DO j = 1, 8
    s = s + A(i,j)
  END DO
  B(i) = s
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_reductions(&p, &a, &maps, &mut d);
        assert_eq!(a.reductions.len(), 1);
        let acc = accumulation_def(&a.reductions[0]);
        match d.scalar(acc) {
            ScalarMapping::Reduction {
                target,
                reduce_dims,
                ..
            } => {
                assert_eq!(target.array, p.vars.lookup("a").unwrap());
                assert_eq!(reduce_dims, &vec![1]);
            }
            other => panic!("{:?}", other),
        }
    }

    /// DGEFA's pivot search: the operand column A(:,k) is CYCLIC by
    /// columns; the row index j (the reduction index) lies in a collapsed
    /// dimension, so *no* grid dimension reduces — the whole search is
    /// confined to the owner of column k.
    #[test]
    fn dgefa_maxloc_confined_to_column_owner() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (*, CYCLIC) :: A
REAL A(16,16)
INTEGER j, k, l
REAL tmax
DO k = 1, 15
  tmax = 0.0
  l = k
  DO j = k, 16
    IF (ABS(A(j,k)) > tmax) THEN
      tmax = ABS(A(j,k))
      l = j
    END IF
  END DO
  A(l,k) = A(k,k)
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_reductions(&p, &a, &maps, &mut d);
        assert_eq!(a.reductions.len(), 1, "maxloc recognized");
        let red = &a.reductions[0];
        let acc = accumulation_def(red);
        match d.scalar(acc) {
            ScalarMapping::Reduction {
                target,
                reduce_dims,
                loc_var,
                ..
            } => {
                assert_eq!(target.array, p.vars.lookup("a").unwrap());
                assert!(
                    reduce_dims.is_empty(),
                    "no grid dimension varies with j: search confined to the column owner"
                );
                assert_eq!(*loc_var, p.vars.lookup("l"));
            }
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn replicated_operand_left_alone() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
REAL E(16)
INTEGER j
REAL s
DO j = 1, 16
  s = s + E(j)
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_reductions(&p, &a, &maps, &mut d);
        assert!(d.scalars.is_empty());
    }
}
