//! Mapping of privatizable arrays (paper Sec. 3.1) and partial
//! privatization (Sec. 3.2).
//!
//! Arrays asserted privatizable w.r.t. a loop (via `INDEPENDENT, NEW(...)`
//! or inferred from a no-value-dependences assertion) are mapped with the
//! same target-selection machinery as scalars. Full privatization demands
//! that the alignment be valid at the privatization level in *every*
//! partitioned grid dimension; when that fails on a multi-dimensional
//! grid, partial privatization keeps the failing dimensions partitioned
//! and privatizes only the rest — "the array may be partitioned in some
//! grid dimensions and privatized with respect to the other dimensions".

use crate::decision::{ArrayMappingDecision, Decisions};
use hpf_analysis::Analysis;
use hpf_comm::placement::align_level;
use hpf_dist::{ArrayMapping, GridDimRule, MappingTable};
use hpf_ir::{ArrayRef, LValue, Program, Stmt, StmtId, VarId};

/// Decide privatization for every `(loop, array)` pair asserted
/// privatizable. `partial` enables Sec. 3.2.
pub fn map_arrays(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    partial: bool,
    d: &mut Decisions,
) {
    map_arrays_with(p, a, maps, partial, false, d)
}

/// Like [`map_arrays`], optionally also privatizing arrays *inferred*
/// privatizable by the automatic analysis (no `NEW` clause needed — the
/// paper's stated future work).
pub fn map_arrays_with(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    partial: bool,
    auto: bool,
    d: &mut Decisions,
) {
    let mut pc = a.priv_check();
    for l in p.preorder() {
        if !p.stmt(l).is_loop() {
            continue;
        }
        let mut arrays = pc.privatizable_arrays(&a.dom, &a.induction, l);
        if auto {
            for v in hpf_analysis::autopriv::auto_privatizable_arrays(
                p,
                &a.cfg,
                &a.dom,
                &a.induction,
                l,
            ) {
                // Only consider arrays the directives left replicated —
                // distributed arrays are not privatization candidates.
                if maps.of(v).is_fully_replicated() && !arrays.contains(&v) {
                    arrays.push(v);
                }
            }
        }
        let asserted = pc.privatizable_arrays(&a.dom, &a.induction, l);
        for v in arrays {
            // An array already privatized w.r.t. an outer loop stays with
            // the outermost *successful* decision.
            let outer_done = d.arrays.iter().any(|((ol, ov), dec)| {
                *ov == v
                    && p.is_self_or_ancestor(*ol, l)
                    && !matches!(dec, ArrayMappingDecision::Unchanged)
            });
            if outer_done {
                continue;
            }
            let decision = decide(p, a, maps, l, v, partial);
            // A failed automatic attempt at this loop is not recorded, so
            // inner loops can still try (directive-asserted failures are
            // recorded — they are what Table 3's "No Partial Priv."
            // column measures).
            if matches!(decision, ArrayMappingDecision::Unchanged) && !asserted.contains(&v) {
                continue;
            }
            d.arrays.insert((l, v), decision);
        }
    }
}

fn decide(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    l: StmtId,
    v: VarId,
    partial: bool,
) -> ArrayMappingDecision {
    let priv_level = p.nesting_level(l) + 1;
    // Target selection: "identical to that used for scalar variables" —
    // the consumer references of the array's elements are the lhs
    // references of statements that read it; pick a partitioned one.
    let target = select_target(p, a, maps, l, v);
    let Some((ts, tr)) = target else {
        // No partitioned consumer: privatize fully (each executing
        // processor keeps its own copy; NEW guarantees no live-out).
        return ArrayMappingDecision::FullPrivate { target: None };
    };
    let tmap = maps.of(tr.array);
    // Classify each partitioned grid dimension by the validity of the
    // alignment at the privatization level, considering that dimension
    // alone (Sec. 3.2's modified AlignLevel).
    let mut bad_dims = Vec::new();
    for (g, rule) in tmap.rules.iter().enumerate() {
        if !matches!(rule, GridDimRule::ByDim { .. }) {
            continue;
        }
        let al = align_level(
            p,
            &a.cfg,
            &a.dom,
            &a.induction,
            tmap,
            ts,
            &tr,
            Some(&[g]),
        );
        if al > priv_level {
            bad_dims.push(g);
        }
    }
    if bad_dims.is_empty() {
        return ArrayMappingDecision::FullPrivate {
            target: Some((ts, tr)),
        };
    }
    if !partial {
        // "The compiler will fail in its attempt to privatize the array" —
        // it stays replicated/as-declared.
        return ArrayMappingDecision::Unchanged;
    }
    // Partial privatization: keep the bad dimensions partitioned. The
    // array dimension to partition is found by correlating loop indices of
    // the target's driving subscript with the privatized array's own
    // references inside the loop.
    let mut partition = Vec::new();
    for &g in &bad_dims {
        let Some(adim) = correlate_dim(p, a, l, v, tmap, ts, &tr, g) else {
            return ArrayMappingDecision::Unchanged;
        };
        partition.push((g, adim));
    }
    // Everything not partitioned becomes private.
    let private_dims: Vec<usize> = (0..tmap.rules.len())
        .filter(|g| !partition.iter().any(|(pg, _)| pg == g))
        .collect();
    ArrayMappingDecision::PartialPrivate {
        private_dims,
        partition,
        target: Some((ts, tr)),
    }
}

/// Find a partitioned consumer reference for array `v` inside loop `l`:
/// the lhs reference of a statement whose rhs reads `v`.
fn select_target(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    l: StmtId,
    v: VarId,
) -> Option<(StmtId, ArrayRef)> {
    let _ = a;
    for s in p.preorder() {
        if !p.is_self_or_ancestor(l, s) {
            continue;
        }
        let Stmt::Assign { lhs, rhs } = p.stmt(s) else {
            continue;
        };
        let reads_v = rhs.array_refs().iter().any(|r| r.array == v);
        if !reads_v {
            continue;
        }
        if let LValue::Array(r) = lhs {
            if r.array != v && !maps.of(r.array).is_fully_replicated() {
                return Some((s, r.clone()));
            }
        }
    }
    None
}

/// Which dimension of `v`'s references corresponds to the target's grid
/// dimension `g`? Correlate through the loop index driving the target's
/// subscript in that dimension.
#[allow(clippy::too_many_arguments)]
fn correlate_dim(
    p: &Program,
    a: &Analysis<'_>,
    l: StmtId,
    v: VarId,
    tmap: &ArrayMapping,
    ts: StmtId,
    tr: &ArrayRef,
    g: usize,
) -> Option<usize> {
    let adim = tmap.array_dim_of_grid_dim(g)?;
    let sub = tr.subs.get(adim)?;
    let aff = a.induction.affine_view(p, &a.cfg, &a.dom, ts, sub)?;
    // The driving loop index: the unique loop variable in the subscript.
    let mut driver = None;
    for var in aff.vars() {
        let is_index = p
            .enclosing_loops(ts)
            .iter()
            .any(|&lp| p.loop_var(lp) == Some(var));
        if is_index {
            if driver.is_some() {
                return None;
            }
            driver = Some(var);
        }
    }
    let driver = driver?;
    // Find a write reference of v inside l whose subscript in some
    // dimension uses the same index.
    for s in p.preorder() {
        if !p.is_self_or_ancestor(l, s) {
            continue;
        }
        let Stmt::Assign {
            lhs: LValue::Array(r),
            ..
        } = p.stmt(s)
        else {
            continue;
        };
        if r.array != v {
            continue;
        }
        for (dim, sub) in r.subs.iter().enumerate() {
            if let Some(aff) = a.induction.affine_view(p, &a.cfg, &a.dom, s, sub) {
                if aff.depends_on(driver) {
                    return Some(dim);
                }
            }
        }
    }
    None
}

/// Build the concrete [`ArrayMapping`] implementing a decision, to install
/// into a [`MappingTable`] for lowering.
pub fn realize_mapping(
    p: &Program,
    maps: &MappingTable,
    v: VarId,
    decision: &ArrayMappingDecision,
) -> Option<ArrayMapping> {
    let grid_rank = maps.grid.rank();
    match decision {
        ArrayMappingDecision::Unchanged => None,
        ArrayMappingDecision::FullPrivate { .. } => Some(ArrayMapping {
            array: v,
            rules: vec![GridDimRule::Private; grid_rank],
        }),
        ArrayMappingDecision::PartialPrivate {
            partition,
            target,
            ..
        } => {
            let mut rules = vec![GridDimRule::Private; grid_rank];
            let shape = p.vars.info(v).shape()?;
            let tmap = target.as_ref().map(|(_, tr)| maps.of(tr.array));
            for &(g, adim) in partition {
                // Reuse the target's distribution format on v's own extent.
                let dist = match tmap.map(|m| &m.rules[g]) {
                    Some(GridDimRule::ByDim { dist, .. }) => *dist,
                    _ => hpf_ir::DistFormat::Block,
                };
                let (lo, hi) = shape.dims[adim];
                rules[g] = GridDimRule::ByDim {
                    array_dim: adim,
                    dist,
                    stride: 1,
                    offset: 0,
                    t_lo: lo,
                    t_extent: hi - lo + 1,
                };
            }
            Some(ArrayMapping { array: v, rules })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    /// The paper's Figure 6 (APPSP fragment): `c` is privatizable w.r.t.
    /// the k loop but its j subscript prevents full privatization on a 2-D
    /// grid; partial privatization partitions c's j dimension and
    /// privatizes the k grid dimension.
    fn figure6() -> Program {
        parse_program(
            r#"
!HPF$ PROCESSORS P(2,2)
!HPF$ DISTRIBUTE (*, *, BLOCK, BLOCK) :: RSD
REAL RSD(5,8,8,8), C(8,8,5)
INTEGER i, j, k
!HPF$ INDEPENDENT, NEW(c)
DO k = 2, 7
  DO j = 2, 7
    DO i = 2, 7
      C(i,j,1) = RSD(1,i,j,k) + 1.0
    END DO
  END DO
  DO j = 3, 7
    DO i = 2, 7
      RSD(1,i,j,k) = C(i,j-1,1) * 2.0
    END DO
  END DO
END DO
"#,
        )
        .unwrap()
    }

    #[test]
    fn figure6_partial_privatization() {
        let p = figure6();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let c = p.vars.lookup("c").unwrap();
        let kloop = p
            .preorder()
            .into_iter()
            .find(|&s| p.loop_var(s) == Some(p.vars.lookup("k").unwrap()))
            .unwrap();

        // With partial privatization on:
        let mut d = Decisions::default();
        map_arrays(&p, &a, &maps, true, &mut d);
        match d.array(kloop, c) {
            ArrayMappingDecision::PartialPrivate {
                private_dims,
                partition,
                ..
            } => {
                // Grid dim 1 (driven by k) can be privatized; grid dim 0
                // (driven by j) must stay partitioned, on c's dim 1.
                assert_eq!(private_dims, &vec![1]);
                assert_eq!(partition, &vec![(0, 1)]);
            }
            other => panic!("expected partial privatization, got {:?}", other),
        }

        // Without partial privatization the attempt fails entirely.
        let mut d2 = Decisions::default();
        map_arrays(&p, &a, &maps, false, &mut d2);
        assert_eq!(*d2.array(kloop, c), ArrayMappingDecision::Unchanged);
    }

    #[test]
    fn figure6_realized_mapping() {
        let p = figure6();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let c = p.vars.lookup("c").unwrap();
        let kloop = p
            .preorder()
            .into_iter()
            .find(|&s| p.loop_var(s) == Some(p.vars.lookup("k").unwrap()))
            .unwrap();
        let mut d = Decisions::default();
        map_arrays(&p, &a, &maps, true, &mut d);
        let m = realize_mapping(&p, &maps, c, d.array(kloop, c)).unwrap();
        assert!(matches!(m.rules[1], GridDimRule::Private));
        match &m.rules[0] {
            GridDimRule::ByDim {
                array_dim, dist, ..
            } => {
                assert_eq!(*array_dim, 1);
                assert_eq!(*dist, hpf_ir::DistFormat::Block);
            }
            other => panic!("{:?}", other),
        }
        assert_eq!(m.private_dims(), vec![1]);
    }

    /// On a 1-D distribution the same array privatizes fully.
    #[test]
    fn full_privatization_on_1d() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (*, *, *, BLOCK) :: RSD
REAL RSD(5,8,8,8), C(8,8,5)
INTEGER i, j, k
!HPF$ INDEPENDENT, NEW(c)
DO k = 2, 7
  DO j = 2, 7
    DO i = 2, 7
      C(i,j,1) = RSD(1,i,j,k) + 1.0
    END DO
  END DO
  DO j = 3, 7
    DO i = 2, 7
      RSD(1,i,j,k) = C(i,j-1,1) * 2.0
    END DO
  END DO
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let c = p.vars.lookup("c").unwrap();
        let kloop = p
            .preorder()
            .into_iter()
            .find(|&s| p.loop_var(s) == Some(p.vars.lookup("k").unwrap()))
            .unwrap();
        let mut d = Decisions::default();
        map_arrays(&p, &a, &maps, true, &mut d);
        assert!(matches!(
            d.array(kloop, c),
            ArrayMappingDecision::FullPrivate { .. }
        ));
    }

    #[test]
    fn no_new_clause_no_decision() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(8), C(8)
INTEGER i
DO i = 1, 8
  C(i) = 1.0
  A(i) = C(i)
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_arrays(&p, &a, &maps, true, &mut d);
        assert!(d.arrays.is_empty());
    }
}
