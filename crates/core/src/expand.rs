//! Scalar expansion — the classical alternative to privatization.
//!
//! The paper's related work (Sec. 6) contrasts its approach with scalar
//! expansion [Padua & Wolfe] and the subspace model [Knobe & Dally], which
//! eliminate storage dependences by *adding an expansion dimension indexed
//! by a loop induction variable* instead of creating per-processor private
//! copies. This module implements the transformation so the trade-off can
//! be measured: expansion buys the same parallelism but costs O(trip)
//! extra storage per scalar, and the expanded dimension must itself be
//! mapped (aligned/distributed) — which is exactly the problem the paper's
//! privatization framework avoids.

use hpf_analysis::Analysis;
use hpf_ir::{
    ArrayRef, ArrayShape, Expr, LValue, Program, Stmt, StmtId, Value, VarId, VarInfo, VarKind,
};

/// Expand scalar `var` over loop `l`: every definition and use of the
/// scalar inside `l` becomes an element access `var__x(iv)` indexed by the
/// loop variable. Requires constant loop bounds (the expansion dimension
/// must be declarable). Returns the new array's id.
pub fn expand_scalar(
    p: &mut Program,
    a: &Analysis<'_>,
    l: StmtId,
    var: VarId,
) -> Result<VarId, String> {
    let Stmt::Do { lo, hi, var: iv, .. } = p.stmt(l) else {
        return Err("expansion target is not a DO loop".into());
    };
    let iv = *iv;
    let env = |w: VarId| a.constprop.const_at(&a.cfg, l, w);
    let lo_v = match hpf_analysis::constprop::fold_expr(lo, &env) {
        Some(Value::Int(v)) => v,
        _ => return Err("loop lower bound is not a constant".into()),
    };
    let hi_v = match hpf_analysis::constprop::fold_expr(hi, &env) {
        Some(Value::Int(v)) => v,
        _ => return Err("loop upper bound is not a constant".into()),
    };
    if hi_v < lo_v {
        return Err("empty loop".into());
    }
    let info = p.vars.info(var).clone();
    if matches!(info.kind, VarKind::Array(_)) {
        return Err("expansion target is an array".into());
    }
    let new_name = format!("{}__x", info.name);
    if p.vars.lookup(&new_name).is_some() {
        return Err(format!("{} already exists", new_name));
    }
    let arr = p.vars.declare(VarInfo {
        name: new_name,
        ty: info.ty,
        kind: VarKind::Array(ArrayShape {
            dims: vec![(lo_v, hi_v)],
        }),
    });

    // Rewrite the loop subtree.
    let subtree: Vec<StmtId> = p
        .preorder()
        .into_iter()
        .filter(|&s| s != l && p.is_self_or_ancestor(l, s))
        .collect();
    for s in subtree {
        rewrite_stmt(p, s, var, arr, iv);
    }
    p.rebuild_topology();
    Ok(arr)
}

fn rewrite_stmt(p: &mut Program, s: StmtId, var: VarId, arr: VarId, iv: VarId) {
    let stmt = p.stmt_mut(s);
    match stmt {
        Stmt::Assign { lhs, rhs } => {
            *rhs = rewrite_expr(rhs, var, arr, iv);
            match lhs {
                LValue::Scalar(v) if *v == var => {
                    *lhs = LValue::Array(ArrayRef::new(arr, vec![Expr::scalar(iv)]));
                }
                LValue::Array(r) => {
                    for sub in &mut r.subs {
                        *sub = rewrite_expr(sub, var, arr, iv);
                    }
                }
                _ => {}
            }
        }
        Stmt::Do { lo, hi, step, .. } => {
            *lo = rewrite_expr(lo, var, arr, iv);
            *hi = rewrite_expr(hi, var, arr, iv);
            *step = rewrite_expr(step, var, arr, iv);
        }
        Stmt::If { cond, .. } => {
            *cond = rewrite_expr(cond, var, arr, iv);
        }
        _ => {}
    }
}

fn rewrite_expr(e: &Expr, var: VarId, arr: VarId, iv: VarId) -> Expr {
    match e {
        Expr::Scalar(v) if *v == var => Expr::array(arr, vec![Expr::scalar(iv)]),
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Scalar(_) => e.clone(),
        Expr::Array(r) => Expr::Array(ArrayRef {
            array: r.array,
            subs: r.subs.iter().map(|s| rewrite_expr(s, var, arr, iv)).collect(),
        }),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(rewrite_expr(x, var, arr, iv))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(a, var, arr, iv)),
            Box::new(rewrite_expr(b, var, arr, iv)),
        ),
        Expr::Intrinsic(i, args) => Expr::Intrinsic(
            *i,
            args.iter().map(|x| rewrite_expr(x, var, arr, iv)).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::interp::run_program;
    use hpf_ir::parse_program;

    const SRC: &str = r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16), B(16), C(16)
INTEGER i
REAL x
DO i = 1, 16
  x = B(i) + C(i)
  A(i) = x * 0.5
END DO
"#;

    #[test]
    fn expansion_preserves_semantics() {
        let p1 = parse_program(SRC).unwrap();
        let mut p2 = parse_program(SRC).unwrap();
        {
            let a = Analysis::run(&p2);
            let l = p2
                .preorder()
                .into_iter()
                .find(|&s| p2.stmt(s).is_loop())
                .unwrap();
            let x = p2.vars.lookup("x").unwrap();
            // Analysis borrows p2 immutably; clone the pieces we need.
            let arr = expand_scalar_cloned(&p2, &a, l, x);
            p2 = arr.unwrap();
        }
        assert!(p2.vars.lookup("x__x").is_some());
        // No remaining scalar reads of x inside the program body.
        let x = p2.vars.lookup("x").unwrap();
        assert!(hpf_ir::visit::uses_of_scalar(&p2, x).is_empty());

        let data: Vec<f64> = (0..16).map(|k| 1.0 + k as f64 * 0.5).collect();
        let run = |p: &Program| {
            let b = p.vars.lookup("b").unwrap();
            let c = p.vars.lookup("c").unwrap();
            let (mem, _) = run_program(p, |m| {
                m.fill_real(b, &data);
                m.fill_real(c, &data);
            })
            .unwrap();
            mem.real_slice(p.vars.lookup("a").unwrap()).to_vec()
        };
        assert_eq!(run(&p1), run(&p2));
    }

    // Helper: run expansion on a clone to dodge the borrow of Analysis.
    fn expand_scalar_cloned(
        p: &Program,
        a: &Analysis<'_>,
        l: StmtId,
        var: VarId,
    ) -> Result<Program, String> {
        let mut p2 = p.clone();
        expand_scalar(&mut p2, a, l, var)?;
        Ok(p2)
    }

    #[test]
    fn expanded_program_maps_cleanly() {
        let p = parse_program(SRC).unwrap();
        let a = Analysis::run(&p);
        let l = p
            .preorder()
            .into_iter()
            .find(|&s| p.stmt(s).is_loop())
            .unwrap();
        let x = p.vars.lookup("x").unwrap();
        let p2 = expand_scalar_cloned(&p, &a, l, x).unwrap();

        // The expanded program still maps (x__x is replicated by default —
        // the expansion dimension would itself need alignment to avoid
        // replicated storage, which is exactly the paper's critique of
        // expansion-style approaches). SPMD-level validation lives in
        // tests/scalar_expansion.rs.
        let a2 = Analysis::run(&p2);
        let maps = hpf_dist::MappingTable::from_program(&p2, None).unwrap();
        let _d = crate::map_program(&p2, &a2, &maps, crate::CoreConfig::full());
        let xx = p2.vars.lookup("x__x").unwrap();
        assert!(maps.of(xx).is_fully_replicated());
    }

    #[test]
    fn non_constant_bounds_rejected() {
        let src = r#"
REAL B(16)
INTEGER i, n
REAL x
n = 16
DO i = 1, 16
  DO i = 1, 16
  END DO
END DO
"#;
        // A loop whose bound is a variable that const-prop CAN resolve is
        // fine; make one it cannot resolve (read from an array).
        let src2 = r#"
REAL B(16)
INTEGER NARR(2)
INTEGER i
REAL x
DO i = 1, NARR(1)
  x = B(i)
  B(i) = x
END DO
"#;
        let _ = src;
        let p = parse_program(src2).unwrap();
        let a = Analysis::run(&p);
        let l = p
            .preorder()
            .into_iter()
            .find(|&s| p.stmt(s).is_loop())
            .unwrap();
        let x = p.vars.lookup("x").unwrap();
        let mut p2 = p.clone();
        assert!(expand_scalar(&mut p2, &a, l, x).is_err());
    }

    #[test]
    fn array_target_rejected() {
        let p = parse_program(SRC).unwrap();
        let a = Analysis::run(&p);
        let l = p
            .preorder()
            .into_iter()
            .find(|&s| p.stmt(s).is_loop())
            .unwrap();
        let arr = p.vars.lookup("a").unwrap();
        let mut p2 = p.clone();
        assert!(expand_scalar(&mut p2, &a, l, arr).is_err());
    }
}
