//! # phpf-core
//!
//! The paper's contribution: a framework for mapping privatized scalar and
//! array variables under data-driven (owner-computes) parallelization —
//! Gupta, *"On Privatization of Variables for Data-Parallel Execution"*,
//! IPPS 1997.
//!
//! * [`decision`] — the mapping-decision vocabulary (replicated /
//!   privatized without alignment / consumer or producer alignment /
//!   reduction mapping; full and partial array privatization; privatized
//!   control flow);
//! * [`consumer`] — consumer-reference determination (Sec. 2.1, Fig. 2);
//! * [`mapping`] — `DetermineMapping` for scalars (Sec. 2.2, Fig. 3) with
//!   the three policies of Table 1;
//! * [`reductionmap`] — reduction scalars (Sec. 2.3);
//! * [`array`](mod@array) — array privatization and *partial privatization*
//!   (Secs. 3.1–3.2, Fig. 6);
//! * [`controlflow`] — privatized execution of control flow (Sec. 4,
//!   Fig. 7);
//! * [`expand`] — scalar expansion, the related-work alternative the
//!   paper's Sec. 6 contrasts against (for measuring the trade-off).
//!
//! [`map_program`] runs all passes in the paper's order and returns the
//! combined [`Decisions`].

pub mod array;
pub mod consumer;
pub mod controlflow;
pub mod decision;
pub mod expand;
pub mod mapping;
pub mod reductionmap;

pub use array::{map_arrays, map_arrays_with, realize_mapping};
pub use consumer::{consumers_for_use, ConsumerRef};
pub use controlflow::{map_control_flow, predicate_needs_comm};
pub use decision::{ArrayMappingDecision, ControlDecision, Decisions, ScalarMapping};
pub use expand::expand_scalar;
pub use mapping::{CoreConfig, ScalarPolicy};
pub use reductionmap::map_reductions;

use hpf_analysis::Analysis;
use hpf_dist::MappingTable;
use hpf_ir::Program;

/// Run the whole mapping phase: reductions first (their decisions feed the
/// scalar pass as already-mapped definitions), then scalars, arrays and
/// control flow.
pub fn map_program(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    cfg: CoreConfig,
) -> Decisions {
    let mut d = Decisions::default();
    if cfg.reduction_align {
        map_reductions(p, a, maps, &mut d);
    }
    let mut mapper = mapping::ScalarMapper::new(p, a, maps, cfg);
    mapper.run(&mut d);
    if cfg.array_priv {
        array::map_arrays_with(p, a, maps, cfg.partial_priv, cfg.auto_array_priv, &mut d);
    }
    if cfg.privatize_control {
        map_control_flow(p, a, maps, &mut d);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    #[test]
    fn full_pipeline_produces_report() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(20), B(20), C(20), D(20), E(20), F(20)
INTEGER i, m
REAL x, y, z
m = 2
DO i = 2, 19
  m = m + 1
  x = B(i) + C(i)
  y = A(i) + B(i)
  z = E(i) + F(i)
  A(i+1) = y / z
  D(m) = x / z
END DO
"#;
        let p = parse_program(src).unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let d = map_program(&p, &a, &maps, CoreConfig::full());
        let report = d.report(&p);
        assert!(report.contains("aligned with consumer d"), "{}", report);
        assert!(report.contains("aligned with producer"), "{}", report);
        assert!(report.contains("private (no alignment)"), "{}", report);
    }
}
