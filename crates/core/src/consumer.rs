//! Consumer-reference determination (paper Sec. 2.1, Figure 2).
//!
//! "The consumer reference for a read reference u is a reference r whose
//! owner needs the value of u during execution of that statement. Thus, in
//! most cases, under the owner-computes rule, the consumer reference is the
//! lhs of the assignment statement. For special cases where a read
//! reference, such as a subscript, is needed by all processors, the
//! consumer reference is set to be a dummy replicated reference. As an
//! optimization, for a reference which appears as a subscript of an rhs
//! reference which does not need communication, phpf sets the consumer
//! reference to be the lhs reference."

use hpf_analysis::Analysis;
use hpf_comm::pattern::{classify, symbolic_owner, CommPattern, SymbolicOwner};
use hpf_dist::MappingTable;
use hpf_ir::visit::ReadCtx;
use hpf_ir::{ArrayRef, LValue, Program, Stmt, StmtId, VarId};

/// A consumer reference for one read occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsumerRef {
    /// The dummy replicated reference: the value must be broadcast.
    Replicated,
    /// The owner of this array reference needs the value.
    Ref { stmt: StmtId, r: ArrayRef },
    /// The use's statement assigns to a scalar; the consumer is wherever
    /// that scalar's definition ends up mapped (resolved recursively by
    /// the mapping algorithm).
    ScalarLhs { stmt: StmtId, var: VarId },
}

/// Consumer references for every occurrence of `var` read in `use_stmt`.
pub fn consumers_for_use(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    use_stmt: StmtId,
    var: VarId,
) -> Vec<ConsumerRef> {
    let mut out = Vec::new();
    for occ in a.rd.read_contexts(use_stmt, var) {
        out.push(consumer_for_occurrence(p, a, maps, use_stmt, occ.ctx, var));
    }
    out
}

fn consumer_for_occurrence(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    use_stmt: StmtId,
    ctx: ReadCtx,
    var_of_occurrence: VarId,
) -> ConsumerRef {
    match ctx {
        // Loop bounds are evaluated by every processor.
        ReadCtx::LoopBound => ConsumerRef::Replicated,
        // IF predicates default to all processors; Section 4 narrows this
        // separately when the control statement is privatized.
        ReadCtx::Condition => ConsumerRef::Replicated,
        // A subscript of the LHS reference determines ownership and must be
        // known wherever the guard is evaluated: broadcast. (Induction
        // variables never reach here — their closed forms replace them.)
        ReadCtx::LhsSubscript => ConsumerRef::Replicated,
        ReadCtx::Rhs => lhs_consumer(p, use_stmt),
        ReadCtx::RhsSubscript => {
            // The subscript is needed only by the executing processor when
            // every rhs reference that contains it is communication-free
            // w.r.t. the lhs owner; otherwise the subscript values must be
            // made available wherever the data is fetched from: broadcast.
            if refs_containing_var_all_local(p, a, maps, use_stmt, var_of_occurrence) {
                lhs_consumer(p, use_stmt)
            } else {
                ConsumerRef::Replicated
            }
        }
    }
}

fn lhs_consumer(p: &Program, use_stmt: StmtId) -> ConsumerRef {
    match p.stmt(use_stmt) {
        Stmt::Assign { lhs, .. } => match lhs {
            LValue::Array(r) => ConsumerRef::Ref {
                stmt: use_stmt,
                r: r.clone(),
            },
            LValue::Scalar(v) => ConsumerRef::ScalarLhs {
                stmt: use_stmt,
                var: *v,
            },
        },
        // Reads in DO bounds/IF conditions are handled by their contexts;
        // anything else is needed everywhere.
        _ => ConsumerRef::Replicated,
    }
}

/// Are all rhs array refs of `stmt` whose *subscripts* read `var`
/// communication-free w.r.t. the lhs owner?
fn refs_containing_var_all_local(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    stmt: StmtId,
    var: VarId,
) -> bool {
    let Stmt::Assign { lhs, rhs } = p.stmt(stmt) else {
        return false;
    };
    let dst: Option<SymbolicOwner> = match lhs {
        LValue::Array(r) => {
            symbolic_owner(p, &a.cfg, &a.dom, &a.induction, maps.of(r.array), stmt, r)
        }
        LValue::Scalar(_) => Some(SymbolicOwner::replicated(maps.grid.rank())),
    };
    let Some(dst) = dst else { return false };
    for r in rhs.array_refs() {
        let contains = r
            .subs
            .iter()
            .any(|s| s.scalar_reads().contains(&var));
        if !contains {
            continue;
        }
        let m = maps.of(r.array);
        if m.is_fully_replicated() {
            continue;
        }
        let Some(src) = symbolic_owner(p, &a.cfg, &a.dom, &a.induction, m, stmt, r) else {
            return false;
        };
        if classify(&src, &dst) != CommPattern::Local {
            return false;
        }
    }
    true
}

/// Would the rhs array references of `stmt` need communication to reach the
/// owner of the lhs reference? (`true` = all provably local.)
pub fn rhs_refs_all_local(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    stmt: StmtId,
) -> bool {
    let Stmt::Assign { lhs, rhs } = p.stmt(stmt) else {
        return false;
    };
    let dst: Option<SymbolicOwner> = match lhs {
        LValue::Array(r) => {
            symbolic_owner(p, &a.cfg, &a.dom, &a.induction, maps.of(r.array), stmt, r)
        }
        // Scalar lhs whose mapping is not yet known: be conservative and
        // require replicated sources.
        LValue::Scalar(_) => Some(SymbolicOwner::replicated(maps.grid.rank())),
    };
    let Some(dst) = dst else { return false };
    for r in rhs.array_refs() {
        let m = maps.of(r.array);
        if m.is_fully_replicated() {
            continue;
        }
        let Some(src) = symbolic_owner(p, &a.cfg, &a.dom, &a.induction, m, stmt, r) else {
            return false;
        };
        if classify(&src, &dst) != CommPattern::Local {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    /// The paper's Figure 2: the consumer reference for `p` is `A(i)`
    /// (H(i,p) needs no communication), while `q` must be replicated
    /// (G(q,i) involves communication).
    #[test]
    fn figure2_consumer_references() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN G(i,j) WITH H(i,j)
!HPF$ ALIGN A(i) WITH H(i,1)
!HPF$ DISTRIBUTE (BLOCK, *) :: H
REAL H(16,16), G(16,16), A(16), B(16), C(16)
INTEGER i, p, q
DO i = 1, 16
  p = B(i)
  q = C(i)
  A(i) = H(i,p) + G(q,i)
END DO
"#;
        let prog = parse_program(src).unwrap();
        let a = Analysis::run(&prog);
        let maps = MappingTable::from_program(&prog, None).unwrap();
        let p_var = prog.vars.lookup("p").unwrap();
        let q_var = prog.vars.lookup("q").unwrap();
        let use_stmt = prog
            .preorder()
            .into_iter()
            .filter(|&s| prog.stmt(s).is_assign())
            .nth(2)
            .unwrap(); // A(i) = ...

        // p appears only in H(i,p), whose owner is the owner of row i —
        // the same processor as the owner of A(i): no communication, so
        // the consumer reference for p is the lhs A(i).
        let cons_p = consumers_for_use(&prog, &a, &maps, use_stmt, p_var);
        assert_eq!(cons_p.len(), 1);
        match &cons_p[0] {
            ConsumerRef::Ref { r, .. } => {
                assert_eq!(r.array, prog.vars.lookup("a").unwrap());
            }
            other => panic!("expected lhs consumer for p, got {:?}", other),
        }
        // q appears in G(q,i), which needs communication: q must be made
        // available on all processors (dummy replicated consumer).
        let cons_q = consumers_for_use(&prog, &a, &maps, use_stmt, q_var);
        assert_eq!(cons_q, vec![ConsumerRef::Replicated]);
    }

    /// Same Figure 2 shape but with the comm-free statement isolated: the
    /// subscript's consumer is the lhs.
    #[test]
    fn figure2_subscript_consumer_is_lhs_when_local() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN A(i) WITH H(i,1)
!HPF$ DISTRIBUTE (BLOCK, *) :: H
REAL H(16,16), A(16), B(16)
INTEGER i, p
DO i = 1, 16
  p = B(i)
  A(i) = H(i,p)
END DO
"#;
        let prog = parse_program(src).unwrap();
        let a = Analysis::run(&prog);
        let maps = MappingTable::from_program(&prog, None).unwrap();
        let p_var = prog.vars.lookup("p").unwrap();
        let use_stmt = prog
            .preorder()
            .into_iter()
            .filter(|&s| prog.stmt(s).is_assign())
            .nth(1)
            .unwrap();
        let cons = consumers_for_use(&prog, &a, &maps, use_stmt, p_var);
        assert_eq!(cons.len(), 1);
        match &cons[0] {
            ConsumerRef::Ref { r, .. } => {
                assert_eq!(r.array, prog.vars.lookup("a").unwrap());
            }
            other => panic!("expected lhs consumer, got {:?}", other),
        }
    }

    #[test]
    fn loop_bound_use_is_replicated() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16)
INTEGER i, n2
n2 = 8
DO i = 1, n2
  A(i) = 1.0
END DO
"#;
        let prog = parse_program(src).unwrap();
        let a = Analysis::run(&prog);
        let maps = MappingTable::from_program(&prog, None).unwrap();
        let n2 = prog.vars.lookup("n2").unwrap();
        let lp = prog
            .preorder()
            .into_iter()
            .find(|&s| prog.stmt(s).is_loop())
            .unwrap();
        let cons = consumers_for_use(&prog, &a, &maps, lp, n2);
        assert_eq!(cons, vec![ConsumerRef::Replicated]);
    }

    #[test]
    fn value_use_consumer_is_lhs_array() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: D
REAL D(16)
INTEGER i
REAL x
DO i = 1, 16
  x = 1.0
  D(i) = x
END DO
"#;
        let prog = parse_program(src).unwrap();
        let a = Analysis::run(&prog);
        let maps = MappingTable::from_program(&prog, None).unwrap();
        let x = prog.vars.lookup("x").unwrap();
        let use_stmt = prog
            .preorder()
            .into_iter()
            .filter(|&s| prog.stmt(s).is_assign())
            .nth(1)
            .unwrap();
        let cons = consumers_for_use(&prog, &a, &maps, use_stmt, x);
        match &cons[0] {
            ConsumerRef::Ref { r, .. } => assert_eq!(r.array, prog.vars.lookup("d").unwrap()),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn scalar_lhs_consumer_reported() {
        let src = r#"
REAL A(4)
REAL x, y
x = A(1)
y = x
"#;
        let prog = parse_program(src).unwrap();
        let a = Analysis::run(&prog);
        let maps = MappingTable::from_program(&prog, None).unwrap();
        let x = prog.vars.lookup("x").unwrap();
        let y_stmt = prog
            .preorder()
            .into_iter()
            .filter(|&s| prog.stmt(s).is_assign())
            .nth(1)
            .unwrap();
        let cons = consumers_for_use(&prog, &a, &maps, y_stmt, x);
        assert_eq!(
            cons,
            vec![ConsumerRef::ScalarLhs {
                stmt: y_stmt,
                var: prog.vars.lookup("y").unwrap()
            }]
        );
    }
}
