//! Privatized execution of control-flow statements (paper Sec. 4).
//!
//! "If the statement S cannot transfer control to a target statement
//! outside the body of loop L, then S does not contribute to a computation
//! partitioning guard for the loop L. Essentially, S will be executed by
//! the union of all processors executing any other statement inside loop L
//! for a given iteration. ... Any data referenced in the control predicate
//! of S has to be communicated to the union of all processors that
//! participate in the execution of any statement that is
//! control-dependent on S."

use crate::decision::{ControlDecision, Decisions};
use hpf_analysis::controldep;
use hpf_analysis::Analysis;
use hpf_comm::pattern::{classify, symbolic_owner, CommPattern};
use hpf_dist::MappingTable;
use hpf_ir::{ArrayRef, LValue, Program, Stmt, StmtId};

/// Decide the execution mapping of every control-flow statement.
pub fn map_control_flow(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    d: &mut Decisions,
) {
    for s in p.preorder() {
        if !matches!(p.stmt(s), Stmt::If { .. } | Stmt::Goto(_)) {
            continue;
        }
        let Some(&l) = p.enclosing_loops(s).last() else {
            // Outside any loop: executed by all processors.
            d.controls.insert(
                s,
                ControlDecision {
                    privatized: false,
                    exec_ref: None,
                },
            );
            continue;
        };
        let privatized = !p.transfers_outside(s, l);
        let exec_ref = if privatized {
            common_exec_ref(p, a, maps, s)
        } else {
            None
        };
        d.controls.insert(
            s,
            ControlDecision {
                privatized,
                exec_ref,
            },
        );
    }
}

/// If all statements control-dependent on `s` assign to references with
/// provably identical owners, return one representative reference — the
/// predicate data then only needs to reach that owner set.
fn common_exec_ref(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    s: StmtId,
) -> Option<(StmtId, ArrayRef)> {
    let mut rep: Option<(StmtId, ArrayRef)> = None;
    for t in controldep::dependents(p, s) {
        let Stmt::Assign { lhs, .. } = p.stmt(t) else {
            continue;
        };
        let LValue::Array(r) = lhs else {
            // Scalar assignments do not pin an owner here; their own
            // mapping pass handles them.
            continue;
        };
        if maps.of(r.array).is_fully_replicated() {
            // A replicated lhs executes everywhere; the predicate is then
            // needed everywhere.
            return None;
        }
        match &rep {
            None => rep = Some((t, r.clone())),
            Some((rs, rr)) => {
                let o1 = symbolic_owner(
                    p,
                    &a.cfg,
                    &a.dom,
                    &a.induction,
                    maps.of(rr.array),
                    *rs,
                    rr,
                )?;
                let o2 =
                    symbolic_owner(p, &a.cfg, &a.dom, &a.induction, maps.of(r.array), t, r)?;
                if classify(&o2, &o1) != CommPattern::Local {
                    return None;
                }
            }
        }
    }
    rep
}

/// Does the predicate of a privatized control statement need any
/// communication, given the owner of its dependents?
pub fn predicate_needs_comm(
    p: &Program,
    a: &Analysis<'_>,
    maps: &MappingTable,
    s: StmtId,
    exec_ref: &(StmtId, ArrayRef),
) -> bool {
    let Stmt::If { cond, .. } = p.stmt(s) else {
        return false;
    };
    let Some(dst) = symbolic_owner(
        p,
        &a.cfg,
        &a.dom,
        &a.induction,
        maps.of(exec_ref.1.array),
        exec_ref.0,
        &exec_ref.1,
    ) else {
        return true;
    };
    for r in cond.array_refs() {
        let m = maps.of(r.array);
        if m.is_fully_replicated() {
            continue;
        }
        match symbolic_owner(p, &a.cfg, &a.dom, &a.induction, m, s, r) {
            Some(src) => {
                if classify(&src, &dst) != CommPattern::Local {
                    return true;
                }
            }
            None => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::parse_program;

    /// The paper's Figure 7: both IFs transfer control only within the
    /// i-loop, so their execution is privatized; B(i) is owned by the same
    /// processor as A(i), so no predicate communication is needed and the
    /// loop parallelizes with shrunk bounds.
    fn figure7() -> Program {
        parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16), B(16), C(16)
INTEGER i
DO i = 1, 16
  IF (B(i) /= 0.0) THEN
    A(i) = A(i) / B(i)
    IF (B(i) < 0.0) GOTO 100
  ELSE
    A(i) = C(i)
    C(i) = C(i) * C(i)
  END IF
100 CONTINUE
END DO
"#,
        )
        .unwrap()
    }

    #[test]
    fn figure7_ifs_privatized_no_comm() {
        let p = figure7();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_control_flow(&p, &a, &maps, &mut d);

        let ifs: Vec<StmtId> = p
            .preorder()
            .into_iter()
            .filter(|&s| matches!(p.stmt(s), Stmt::If { .. }))
            .collect();
        assert_eq!(ifs.len(), 2);
        for s in &ifs {
            let c = d.control(*s).unwrap();
            assert!(c.privatized, "IF at {:?} privatized", s);
            // The outer IF's dependents all assign A(i)/C(i) (co-owned);
            // the inner IF controls only a GOTO with no skipped
            // statements, so it has no exec ref and trivially needs no
            // communication.
            if let Some(er) = c.exec_ref.as_ref() {
                assert!(
                    !predicate_needs_comm(&p, &a, &maps, *s, er),
                    "B(i) is co-owned with A(i): no predicate communication"
                );
            }
        }
        // The outer IF does have a common exec ref (A(i)).
        let outer = ifs
            .iter()
            .copied()
            .find(|&s| p.nesting_level(s) == 1)
            .unwrap();
        let er = d.control(outer).unwrap().exec_ref.clone().expect("outer exec ref");
        assert_eq!(er.1.array, p.vars.lookup("a").unwrap());
        // The bare GOTO inside the inner IF is privatized too.
        let gotos: Vec<StmtId> = p
            .preorder()
            .into_iter()
            .filter(|&s| matches!(p.stmt(s), Stmt::Goto(_)))
            .collect();
        assert_eq!(gotos.len(), 1);
        assert!(d.control(gotos[0]).unwrap().privatized);
    }

    #[test]
    fn goto_escaping_loop_not_privatized() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16)
INTEGER i
DO i = 1, 16
  IF (A(i) < 0.0) GOTO 200
  A(i) = A(i) + 1.0
END DO
200 CONTINUE
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_control_flow(&p, &a, &maps, &mut d);
        let iff = p
            .preorder()
            .into_iter()
            .find(|&s| matches!(p.stmt(s), Stmt::If { .. }))
            .unwrap();
        assert!(!d.control(iff).unwrap().privatized);
    }

    #[test]
    fn predicate_comm_needed_for_misaligned_data() {
        let p = parse_program(
            r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A, W
REAL A(16), W(16)
INTEGER i
DO i = 1, 15
  IF (W(i+1) > 0.0) THEN
    A(i) = 1.0
  END IF
END DO
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_control_flow(&p, &a, &maps, &mut d);
        let iff = p
            .preorder()
            .into_iter()
            .find(|&s| matches!(p.stmt(s), Stmt::If { .. }))
            .unwrap();
        let c = d.control(iff).unwrap();
        assert!(c.privatized);
        let er = c.exec_ref.as_ref().unwrap();
        assert!(predicate_needs_comm(&p, &a, &maps, iff, er));
    }

    #[test]
    fn control_outside_loop_runs_everywhere() {
        let p = parse_program(
            r#"
REAL x
IF (x > 0.0) THEN
  x = 1.0
END IF
"#,
        )
        .unwrap();
        let a = Analysis::run(&p);
        let maps = MappingTable::from_program(&p, None).unwrap();
        let mut d = Decisions::default();
        map_control_flow(&p, &a, &maps, &mut d);
        let iff = p
            .preorder()
            .into_iter()
            .find(|&s| matches!(p.stmt(s), Stmt::If { .. }))
            .unwrap();
        assert!(!d.control(iff).unwrap().privatized);
    }
}
