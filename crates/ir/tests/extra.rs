//! Additional hpf-ir coverage: parser corners, pretty round trips on
//! every construct, program query edge cases, interpreter details.

use hpf_ir::interp::{run_program, ArrayStore, Value};
use hpf_ir::pretty::print_program;
use hpf_ir::{parse_program, BinOp, Expr, ProgramBuilder, Stmt};

#[test]
fn double_precision_and_dotted_ops() {
    let src = r#"
DOUBLE PRECISION x, y
LOGICAL q
x = 2.0d0
y = x ** 2
q = y .GT. 3.9 .AND. y .LT. 4.1
"#;
    let p = parse_program(src).unwrap();
    let (mem, _) = run_program(&p, |_| {}).unwrap();
    assert_eq!(mem.scalar(p.vars.lookup("y").unwrap()), Value::Real(4.0));
    assert_eq!(mem.scalar(p.vars.lookup("q").unwrap()), Value::Bool(true));
}

#[test]
fn go_to_two_words() {
    let src = r#"
INTEGER k
k = 0
10 k = k + 1
IF (k < 3) GO TO 10
"#;
    let p = parse_program(src).unwrap();
    let (mem, _) = run_program(&p, |_| {}).unwrap();
    assert_eq!(mem.scalar(p.vars.lookup("k").unwrap()), Value::Int(3));
}

#[test]
fn lower_bound_declarations() {
    let src = r#"
REAL A(0:7), B(-2:2)
INTEGER i
DO i = 0, 7
  A(i) = i * 1.0
END DO
DO i = -2, 2
  B(i) = i * 1.0
END DO
"#;
    let p = parse_program(src).unwrap();
    let (mem, _) = run_program(&p, |_| {}).unwrap();
    match mem.array(p.vars.lookup("b").unwrap()) {
        ArrayStore::Real(v) => assert_eq!(v, &[-2.0, -1.0, 0.0, 1.0, 2.0]),
        _ => panic!(),
    }
}

#[test]
fn pretty_roundtrip_every_construct() {
    let src = r#"
!HPF$ PROCESSORS P(2,2)
!HPF$ DISTRIBUTE (BLOCK, CYCLIC(2)) :: A
!HPF$ ALIGN B(i,j) WITH A(i,j)
REAL A(8,8), B(8,8)
INTEGER i, j
REAL s
DO i = 1, 8
  DO j = 1, 8, 2
    IF (A(i,j) > 0.0) THEN
      s = MAX(s, A(i,j))
    ELSE
      IF (A(i,j) < -1.0) GOTO 100
      B(i,j) = -A(i,j)
    END IF
100 CONTINUE
  END DO
END DO
"#;
    let p1 = parse_program(src).unwrap();
    let text = print_program(&p1);
    let p2 = parse_program(&text).unwrap_or_else(|e| panic!("{}\n{}", e, text));
    assert_eq!(p1.num_stmts(), p2.num_stmts());
    // Semantics agree on a sample input.
    let run = |p: &hpf_ir::Program| {
        let a = p.vars.lookup("a").unwrap();
        let (mem, _) = run_program(p, |m| {
            let data: Vec<f64> = (0..64).map(|k| (k as f64) * 0.3 - 8.0).collect();
            m.fill_real(a, &data);
        })
        .unwrap();
        (
            mem.real_slice(p.vars.lookup("b").unwrap()).to_vec(),
            mem.scalar(p.vars.lookup("s").unwrap()),
        )
    };
    assert_eq!(run(&p1), run(&p2));
}

#[test]
fn independent_attaches_to_following_loop_only() {
    let src = r#"
REAL C(4), D(4)
INTEGER i, j
!HPF$ INDEPENDENT, NEW(c)
DO i = 1, 4
  C(1) = 1.0
END DO
!HPF$ INDEPENDENT, NEW(d)
DO j = 1, 4
  D(1) = 1.0
END DO
"#;
    let p = parse_program(src).unwrap();
    let loops: Vec<_> = p
        .preorder()
        .into_iter()
        .filter(|&s| p.stmt(s).is_loop())
        .collect();
    assert_eq!(loops.len(), 2);
    let c = p.vars.lookup("c").unwrap();
    let d = p.vars.lookup("d").unwrap();
    assert!(p.directives.is_new_var(loops[0], c));
    assert!(!p.directives.is_new_var(loops[0], d));
    assert!(p.directives.is_new_var(loops[1], d));
    assert!(!p.directives.is_new_var(loops[1], c));
}

#[test]
fn containing_block_and_levels() {
    let mut b = ProgramBuilder::new();
    let i = b.int_scalar("i");
    let x = b.real_scalar("x");
    let mut inner = None;
    let outer = b.do_loop(i, Expr::int(1), Expr::int(2), |b| {
        b.assign_scalar(x, Expr::real(1.0));
        inner = Some(b.assign_scalar(x, Expr::real(2.0)));
    });
    let p = b.finish();
    let (block, pos) = p.containing_block(inner.unwrap());
    assert_eq!(block.len(), 2);
    assert_eq!(pos, 1);
    let (rootblk, rpos) = p.containing_block(outer);
    assert_eq!(rootblk, &p.body[..]);
    assert_eq!(rpos, 0);
}

#[test]
fn interp_power_and_mod() {
    let src = r#"
INTEGER a, b
REAL r
a = 2 ** 10
b = MOD(17, 5)
r = 2.0 ** (-1.0)
"#;
    let p = parse_program(src).unwrap();
    let (mem, _) = run_program(&p, |_| {}).unwrap();
    assert_eq!(mem.scalar(p.vars.lookup("a").unwrap()), Value::Int(1024));
    assert_eq!(mem.scalar(p.vars.lookup("b").unwrap()), Value::Int(2));
    assert_eq!(mem.scalar(p.vars.lookup("r").unwrap()), Value::Real(0.5));
}

#[test]
fn validate_catches_rank_mismatch_and_bad_goto() {
    let mut b = ProgramBuilder::new();
    let a = b.real_array("A", &[4, 4]);
    let x = b.real_scalar("x");
    // Build an invalid program manually (bypassing builder.finish asserts).
    let mut p = hpf_ir::Program::new();
    let a2 = p.vars.declare(hpf_ir::VarInfo::array(
        "A",
        hpf_ir::ScalarTy::Real,
        hpf_ir::ArrayShape::of_extents(&[4, 4]),
    ));
    let s = p.add_stmt(Stmt::Assign {
        lhs: hpf_ir::LValue::Array(hpf_ir::ArrayRef::new(a2, vec![Expr::int(1)])),
        rhs: Expr::real(0.0),
    });
    let g = p.add_stmt(Stmt::Goto(hpf_ir::Label(99)));
    p.body = vec![s, g];
    p.rebuild_topology();
    let errs = p.validate();
    assert!(errs.iter().any(|e| e.contains("rank mismatch")));
    assert!(errs.iter().any(|e| e.contains("undefined label")));
    let _ = (a, x, b);
}

#[test]
fn transfers_outside_nested_structures() {
    // goto from a doubly nested if, out of the middle loop but not the
    // outer one.
    let src = r#"
REAL W(8)
INTEGER i, j
DO i = 1, 4
  DO j = 1, 4
    IF (W(j) > 0.0) THEN
      GOTO 200
    END IF
  END DO
200 CONTINUE
END DO
"#;
    let p = parse_program(src).unwrap();
    let loops: Vec<_> = p
        .preorder()
        .into_iter()
        .filter(|&s| p.stmt(s).is_loop())
        .collect();
    let iff = p
        .preorder()
        .into_iter()
        .find(|&s| matches!(p.stmt(s), Stmt::If { .. }))
        .unwrap();
    // Escapes the inner j loop...
    assert!(p.transfers_outside(iff, loops[1]));
    // ...but not the outer i loop.
    assert!(!p.transfers_outside(iff, loops[0]));
}

#[test]
fn comparison_chain_precedence() {
    let src = r#"
LOGICAL q
INTEGER a
a = 5
q = (a > 1) .AND. (a < 10) .OR. (a == 0)
"#;
    let p = parse_program(src).unwrap();
    let (mem, _) = run_program(&p, |_| {}).unwrap();
    assert_eq!(mem.scalar(p.vars.lookup("q").unwrap()), Value::Bool(true));
    let _ = BinOp::And;
}
