//! Expressions: literals, scalar and array references, operators,
//! intrinsics.

use crate::program::VarId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators. Comparison operators yield `LOGICAL` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Fortran-ish spelling used by the pretty printer / parser.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => ".AND.",
            BinOp::Or => ".OR.",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
}

/// Intrinsic functions appearing in the benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    Abs,
    Sqrt,
    Exp,
    Max,
    Min,
    Mod,
    /// `SIGN(a, b)` — magnitude of `a` with the sign of `b`.
    Sign,
}

impl Intrinsic {
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Abs => "ABS",
            Intrinsic::Sqrt => "SQRT",
            Intrinsic::Exp => "EXP",
            Intrinsic::Max => "MAX",
            Intrinsic::Min => "MIN",
            Intrinsic::Mod => "MOD",
            Intrinsic::Sign => "SIGN",
        }
    }

    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Abs | Intrinsic::Sqrt | Intrinsic::Exp => 1,
            Intrinsic::Max | Intrinsic::Min | Intrinsic::Mod | Intrinsic::Sign => 2,
        }
    }

    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s.to_ascii_uppercase().as_str() {
            "ABS" => Intrinsic::Abs,
            "SQRT" => Intrinsic::Sqrt,
            "EXP" => Intrinsic::Exp,
            "MAX" => Intrinsic::Max,
            "MIN" => Intrinsic::Min,
            "MOD" => Intrinsic::Mod,
            "SIGN" => Intrinsic::Sign,
            _ => return None,
        })
    }
}

/// An array element reference `A(s1, ..., sk)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayRef {
    pub array: VarId,
    pub subs: Vec<Expr>,
}

impl ArrayRef {
    pub fn new(array: VarId, subs: Vec<Expr>) -> Self {
        ArrayRef { array, subs }
    }

    pub fn rank(&self) -> usize {
        self.subs.len()
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    IntLit(i64),
    RealLit(f64),
    BoolLit(bool),
    /// Read of a scalar variable (loop indices are integer scalars).
    Scalar(VarId),
    /// Read of an array element.
    Array(ArrayRef),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Intrinsic(Intrinsic, Vec<Expr>),
}

impl Expr {
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    pub fn real(v: f64) -> Expr {
        Expr::RealLit(v)
    }

    pub fn scalar(v: VarId) -> Expr {
        Expr::Scalar(v)
    }

    pub fn array(a: VarId, subs: Vec<Expr>) -> Expr {
        Expr::Array(ArrayRef::new(a, subs))
    }

    // Builder methods, deliberately named like the operator traits: call
    // sites read as expression algebra without requiring `use std::ops`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    pub fn cmp(self, op: BinOp, rhs: Expr) -> Expr {
        debug_assert!(op.is_comparison() || op.is_logical());
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// True for expressions with no sub-expressions.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Scalar(_)
        )
    }

    /// If this is an integer literal, its value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            _ => None,
        }
    }

    /// All scalar variables read anywhere in this expression (including in
    /// array subscripts), in source order, possibly with duplicates.
    pub fn scalar_reads(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Scalar(v) = e {
                out.push(*v);
            }
        });
        out
    }

    /// All array references anywhere in this expression, in source order.
    pub fn array_refs(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.walk_refs(&mut |r| out.push(r));
        out
    }

    /// Pre-order walk over all sub-expressions, including subscripts.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Scalar(_) => {}
            Expr::Array(r) => {
                for s in &r.subs {
                    s.walk(f);
                }
            }
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    fn walk_refs<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef)) {
        self.walk(&mut |e| {
            if let Expr::Array(r) = e {
                f(r);
            }
        });
    }

    /// Substitute every read of scalar `var` by `repl` (used by induction
    /// variable closed-form substitution).
    pub fn substitute_scalar(&self, var: VarId, repl: &Expr) -> Expr {
        match self {
            Expr::Scalar(v) if *v == var => repl.clone(),
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Scalar(_) => {
                self.clone()
            }
            Expr::Array(r) => Expr::Array(ArrayRef {
                array: r.array,
                subs: r
                    .subs
                    .iter()
                    .map(|s| s.substitute_scalar(var, repl))
                    .collect(),
            }),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute_scalar(var, repl))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute_scalar(var, repl)),
                Box::new(b.substitute_scalar(var, repl)),
            ),
            Expr::Intrinsic(i, args) => Expr::Intrinsic(
                *i,
                args.iter().map(|a| a.substitute_scalar(var, repl)).collect(),
            ),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn scalar_reads_include_subscripts() {
        // B(i) + x
        let e = Expr::array(v(0), vec![Expr::scalar(v(1))]).add(Expr::scalar(v(2)));
        assert_eq!(e.scalar_reads(), vec![v(1), v(2)]);
    }

    #[test]
    fn array_refs_found_nested() {
        // A(B(i))
        let inner = Expr::array(v(1), vec![Expr::scalar(v(2))]);
        let e = Expr::array(v(0), vec![inner]);
        let refs = e.array_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].array, v(0));
        assert_eq!(refs[1].array, v(1));
    }

    #[test]
    fn substitution_replaces_in_subscripts() {
        // m + A(m)  with m := i + 1
        let repl = Expr::scalar(v(9)).add(Expr::int(1));
        let e = Expr::scalar(v(3)).add(Expr::array(v(0), vec![Expr::scalar(v(3))]));
        let out = e.substitute_scalar(v(3), &repl);
        assert_eq!(out.scalar_reads(), vec![v(9), v(9)]);
    }

    #[test]
    fn intrinsic_roundtrip() {
        for i in [
            Intrinsic::Abs,
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Max,
            Intrinsic::Min,
            Intrinsic::Mod,
            Intrinsic::Sign,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("FOO"), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Le.is_logical());
    }
}
