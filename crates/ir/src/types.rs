//! Variable types and shapes.

use serde::{Deserialize, Serialize};

/// The elemental type of a scalar or of an array's elements.
///
/// The paper's programs only need Fortran `INTEGER`, `REAL` (we use f64
/// precision, matching `REAL*8` in the benchmark codes) and `LOGICAL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarTy {
    Int,
    Real,
    Bool,
}

impl ScalarTy {
    /// Size in bytes as transmitted over the network by the SPMD runtime and
    /// charged by the communication cost model (Fortran `INTEGER*4`,
    /// `REAL*8`, `LOGICAL*4`).
    pub fn byte_size(self) -> usize {
        match self {
            ScalarTy::Int => 4,
            ScalarTy::Real => 8,
            ScalarTy::Bool => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ScalarTy::Int => "INTEGER",
            ScalarTy::Real => "REAL",
            ScalarTy::Bool => "LOGICAL",
        }
    }
}

/// Declared shape of an array: per-dimension inclusive bounds
/// `lo(d)..=hi(d)`, Fortran-style (default lower bound 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayShape {
    pub dims: Vec<(i64, i64)>,
}

impl ArrayShape {
    /// A shape with 1-based dimensions of the given extents.
    pub fn of_extents(extents: &[i64]) -> Self {
        ArrayShape {
            dims: extents.iter().map(|&e| (1, e)).collect(),
        }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `d` (0-based dimension index).
    pub fn extent(&self, d: usize) -> i64 {
        let (lo, hi) = self.dims[d];
        (hi - lo + 1).max(0)
    }

    /// Total number of elements.
    pub fn len(&self) -> i64 {
        self.dims.iter().map(|&(lo, hi)| (hi - lo + 1).max(0)).product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column-major (Fortran) linearization of a global index tuple.
    /// Panics if the index is out of bounds.
    pub fn linearize(&self, idx: &[i64]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off: i64 = 0;
        let mut stride: i64 = 1;
        for (d, &(lo, hi)) in self.dims.iter().enumerate() {
            let i = idx[d];
            assert!(
                i >= lo && i <= hi,
                "index {} out of bounds {}..={} in dim {}",
                i,
                lo,
                hi,
                d
            );
            off += (i - lo) * stride;
            stride *= hi - lo + 1;
        }
        off as usize
    }

    /// Inverse of [`ArrayShape::linearize`].
    pub fn delinearize(&self, mut off: usize) -> Vec<i64> {
        let mut idx = Vec::with_capacity(self.dims.len());
        for &(lo, hi) in &self.dims {
            let ext = (hi - lo + 1) as usize;
            idx.push(lo + (off % ext) as i64);
            off /= ext;
        }
        idx
    }

    /// True if `idx` lies within the declared bounds.
    pub fn contains(&self, idx: &[i64]) -> bool {
        idx.len() == self.dims.len()
            && idx
                .iter()
                .zip(&self.dims)
                .all(|(&i, &(lo, hi))| i >= lo && i <= hi)
    }
}

/// Whether a variable is a scalar or an array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    Scalar,
    Array(ArrayShape),
}

/// A declared variable: name, elemental type and kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarInfo {
    pub name: String,
    pub ty: ScalarTy,
    pub kind: VarKind,
}

impl VarInfo {
    pub fn scalar(name: impl Into<String>, ty: ScalarTy) -> Self {
        VarInfo {
            name: name.into(),
            ty,
            kind: VarKind::Scalar,
        }
    }

    pub fn array(name: impl Into<String>, ty: ScalarTy, shape: ArrayShape) -> Self {
        VarInfo {
            name: name.into(),
            ty,
            kind: VarKind::Array(shape),
        }
    }

    pub fn is_array(&self) -> bool {
        matches!(self.kind, VarKind::Array(_))
    }

    pub fn shape(&self) -> Option<&ArrayShape> {
        match &self.kind {
            VarKind::Array(s) => Some(s),
            VarKind::Scalar => None,
        }
    }

    pub fn rank(&self) -> usize {
        self.shape().map_or(0, |s| s.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip_small() {
        let s = ArrayShape {
            dims: vec![(1, 3), (0, 2), (2, 4)],
        };
        assert_eq!(s.len(), 27);
        for off in 0..s.len() as usize {
            let idx = s.delinearize(off);
            assert_eq!(s.linearize(&idx), off);
            assert!(s.contains(&idx));
        }
    }

    #[test]
    fn column_major_order() {
        // Fortran order: first index varies fastest.
        let s = ArrayShape::of_extents(&[4, 3]);
        assert_eq!(s.linearize(&[1, 1]), 0);
        assert_eq!(s.linearize(&[2, 1]), 1);
        assert_eq!(s.linearize(&[1, 2]), 4);
    }

    #[test]
    fn extent_and_len() {
        let s = ArrayShape::of_extents(&[5, 7]);
        assert_eq!(s.extent(0), 5);
        assert_eq!(s.extent(1), 7);
        assert_eq!(s.len(), 35);
        assert!(!s.is_empty());
    }

    #[test]
    fn byte_sizes_match_fortran() {
        assert_eq!(ScalarTy::Int.byte_size(), 4);
        assert_eq!(ScalarTy::Real.byte_size(), 8);
        assert_eq!(ScalarTy::Bool.byte_size(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn linearize_oob_panics() {
        let s = ArrayShape::of_extents(&[3]);
        s.linearize(&[4]);
    }

    #[test]
    fn contains_rejects_wrong_rank() {
        let s = ArrayShape::of_extents(&[3, 3]);
        assert!(!s.contains(&[1]));
        assert!(s.contains(&[3, 3]));
        assert!(!s.contains(&[0, 1]));
    }
}
