//! # hpf-ir
//!
//! Intermediate representation for Fortran-style loop nests annotated with
//! High Performance Fortran (HPF) data-mapping directives.
//!
//! This crate is the substrate for a reproduction of Gupta, *"On
//! Privatization of Variables for Data-Parallel Execution"* (IPPS 1997).
//! The paper's analyses consume exactly the program features modelled here:
//!
//! * structured `DO` loops with affine bounds and strides,
//! * assignments to scalars and to array elements with (mostly) affine
//!   subscripts,
//! * structured `IF`/`ELSE` plus Fortran-style `GOTO`/labelled `CONTINUE`
//!   (needed for the paper's Section 4 on control-flow privatization),
//! * HPF `PROCESSORS`, `ALIGN`, `DISTRIBUTE` directives and the
//!   `INDEPENDENT, NEW(...)` loop directive.
//!
//! The representation is an arena of statements ([`Program`]) so that every
//! analysis can key results by a stable [`StmtId`], plus an interned
//! variable table keyed by [`VarId`].
//!
//! Three front doors are provided:
//!
//! * [`build::ProgramBuilder`] — a programmatic builder used by the kernels,
//! * [`parse::parse_program`] — a small text-DSL parser for mini-HPF source,
//! * [`pretty`] — the inverse pretty-printer.
//!
//! [`interp`] contains a sequential interpreter which defines the *golden*
//! semantics of a program: every parallelization produced by the rest of the
//! workspace is validated against it.

pub mod affine;
pub mod build;
pub mod directives;
pub mod expr;
pub mod interp;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod types;
pub mod visit;

pub use affine::Affine;
pub use build::ProgramBuilder;
pub use directives::{AlignDim, AlignDirective, DistFormat, DistributeDirective, ProcGridDecl};
pub use expr::{ArrayRef, BinOp, Expr, Intrinsic, UnOp};
pub use interp::{Interp, Memory, Value};
pub use parse::parse_program;
pub use program::{Program, VarId, VarTable};
pub use stmt::{LValue, Label, Stmt, StmtId, StmtNode};
pub use types::{ArrayShape, ScalarTy, VarInfo, VarKind};
