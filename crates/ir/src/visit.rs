//! Program walkers used by the analyses: enumerate statements with their
//! reads/writes, collect references per variable, etc.

use crate::expr::{ArrayRef, Expr};
use crate::program::{Program, VarId};
use crate::stmt::{LValue, Stmt, StmtId};

/// A read reference site: which statement, and whether the read occurs in a
/// subscript position of some array reference (relevant for the paper's
/// consumer-reference rules) or in a loop-bound/condition position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadCtx {
    /// Ordinary value position on the RHS of an assignment.
    Rhs,
    /// Inside a subscript of an RHS array reference.
    RhsSubscript,
    /// Inside a subscript of the LHS array reference.
    LhsSubscript,
    /// In a DO-loop bound or step expression.
    LoopBound,
    /// In the condition of an IF.
    Condition,
}

/// One scalar read occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarRead {
    pub stmt: StmtId,
    pub var: VarId,
    pub ctx: ReadCtx,
}

/// Collect every scalar read in the program with its context.
pub fn scalar_reads(p: &Program) -> Vec<ScalarRead> {
    let mut out = Vec::new();
    for id in p.preorder() {
        collect_stmt_scalar_reads(p.stmt(id), id, &mut out);
    }
    out
}

fn collect_expr(e: &Expr, stmt: StmtId, top: ReadCtx, out: &mut Vec<ScalarRead>) {
    match e {
        Expr::Scalar(v) => out.push(ScalarRead {
            stmt,
            var: *v,
            ctx: top,
        }),
        Expr::Array(r) => {
            for s in &r.subs {
                let sub_ctx = match top {
                    ReadCtx::LhsSubscript => ReadCtx::LhsSubscript,
                    _ => ReadCtx::RhsSubscript,
                };
                collect_expr(s, stmt, sub_ctx, out);
            }
        }
        Expr::Unary(_, x) => collect_expr(x, stmt, top, out),
        Expr::Binary(_, a, b) => {
            collect_expr(a, stmt, top, out);
            collect_expr(b, stmt, top, out);
        }
        Expr::Intrinsic(_, args) => {
            for a in args {
                collect_expr(a, stmt, top, out);
            }
        }
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => {}
    }
}

/// Collect scalar reads of a single statement (not its children).
pub fn collect_stmt_scalar_reads(st: &Stmt, id: StmtId, out: &mut Vec<ScalarRead>) {
    match st {
        Stmt::Assign { lhs, rhs } => {
            collect_expr(rhs, id, ReadCtx::Rhs, out);
            if let LValue::Array(r) = lhs {
                for s in &r.subs {
                    collect_expr(s, id, ReadCtx::LhsSubscript, out);
                }
            }
        }
        Stmt::Do { lo, hi, step, .. } => {
            collect_expr(lo, id, ReadCtx::LoopBound, out);
            collect_expr(hi, id, ReadCtx::LoopBound, out);
            collect_expr(step, id, ReadCtx::LoopBound, out);
        }
        Stmt::If { cond, .. } => collect_expr(cond, id, ReadCtx::Condition, out),
        Stmt::Goto(_) | Stmt::Continue => {}
    }
}

/// All array references read by a statement (RHS and condition positions),
/// excluding the LHS reference.
pub fn rhs_array_refs(st: &Stmt) -> Vec<&ArrayRef> {
    let mut out = Vec::new();
    for e in st.read_exprs_rhs_only() {
        for r in e.array_refs() {
            out.push(r);
        }
    }
    out
}

impl Stmt {
    /// The read expressions excluding LHS subscripts (those are reads too,
    /// but they belong to the LHS reference for comm purposes).
    pub fn read_exprs_rhs_only(&self) -> Vec<&Expr> {
        match self {
            Stmt::Assign { rhs, .. } => vec![rhs],
            Stmt::Do { lo, hi, step, .. } => vec![lo, hi, step],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::Goto(_) | Stmt::Continue => vec![],
        }
    }
}

/// All statements assigning to the given variable.
pub fn defs_of(p: &Program, var: VarId) -> Vec<StmtId> {
    p.preorder()
        .into_iter()
        .filter(|&id| p.stmt(id).written_var() == Some(var))
        .collect()
}

/// All statements reading the given scalar variable (any context).
pub fn uses_of_scalar(p: &Program, var: VarId) -> Vec<StmtId> {
    let mut out: Vec<StmtId> = Vec::new();
    for r in scalar_reads(p) {
        if r.var == var && !out.contains(&r.stmt) {
            out.push(r.stmt);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::expr::Expr;

    #[test]
    fn read_contexts() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[10]);
        let d = b.real_array("D", &[10]);
        let i = b.int_scalar("i");
        let m = b.int_scalar("m");
        let x = b.real_scalar("x");
        // do i = 1, 10 { D(m) = x / A(i) }
        b.do_loop(i, Expr::int(1), Expr::int(10), |b| {
            b.assign_array(
                d,
                vec![Expr::scalar(m)],
                Expr::scalar(x).div(Expr::array(a, vec![Expr::scalar(i)])),
            );
        });
        let p = b.finish();
        let reads = scalar_reads(&p);
        let m_read = reads.iter().find(|r| r.var == m).unwrap();
        assert_eq!(m_read.ctx, ReadCtx::LhsSubscript);
        let x_read = reads.iter().find(|r| r.var == x).unwrap();
        assert_eq!(x_read.ctx, ReadCtx::Rhs);
        let i_read = reads.iter().find(|r| r.var == i).unwrap();
        assert_eq!(i_read.ctx, ReadCtx::RhsSubscript);
    }

    #[test]
    fn defs_and_uses() {
        let mut b = ProgramBuilder::new();
        let s = b.real_scalar("s");
        let t = b.real_scalar("t");
        b.assign_scalar(s, Expr::real(1.0));
        b.assign_scalar(t, Expr::scalar(s));
        let p = b.finish();
        assert_eq!(defs_of(&p, s).len(), 1);
        assert_eq!(uses_of_scalar(&p, s).len(), 1);
        assert_eq!(defs_of(&p, t).len(), 1);
        assert!(uses_of_scalar(&p, t).is_empty());
    }
}
