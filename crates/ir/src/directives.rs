//! HPF data-mapping and parallelism directives.
//!
//! The subset modelled is the one exercised by the paper:
//! `PROCESSORS`, `DISTRIBUTE (fmt, ...) :: arrays`, `ALIGN x(...) WITH y(...)`
//! and `INDEPENDENT[, NEW(vars)]` on `DO` loops. A weaker "no value-based
//! loop-carried dependences" assertion (`no_value_deps`) is also supported,
//! matching phpf's ability to infer array privatizability from it
//! (Section 3.1 of the paper).

use crate::program::VarId;
use crate::stmt::StmtId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// `!HPF$ PROCESSORS P(d1, d2, ...)` — the (virtual) processor grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGridDecl {
    pub name: String,
    pub dims: Vec<usize>,
}

impl ProcGridDecl {
    pub fn new(name: impl Into<String>, dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
        ProcGridDecl {
            name: name.into(),
            dims,
        }
    }

    pub fn total(&self) -> usize {
        self.dims.iter().product()
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Per-array-dimension distribution format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistFormat {
    /// `BLOCK` — contiguous equal chunks.
    Block,
    /// `CYCLIC` — round-robin single elements.
    Cyclic,
    /// `CYCLIC(k)` — round-robin blocks of `k`.
    BlockCyclic(usize),
    /// `*` — dimension not distributed (collapsed onto one processor set).
    Collapsed,
}

impl DistFormat {
    pub fn is_distributed(self) -> bool {
        !matches!(self, DistFormat::Collapsed)
    }
}

/// `!HPF$ DISTRIBUTE (f1, ..., fk) :: A` — distribution of an array's
/// dimensions over the processor grid. Distributed dimensions are assigned
/// to grid dimensions in order of appearance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributeDirective {
    pub array: VarId,
    pub formats: Vec<DistFormat>,
}

/// One dimension of an `ALIGN` directive's target reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignDim {
    /// Target dimension tracks alignee dimension `alignee_dim` as
    /// `stride * i + offset`.
    Match {
        alignee_dim: usize,
        stride: i64,
        offset: i64,
    },
    /// `*` in the target: the alignee is replicated along this target
    /// dimension.
    Replicate,
    /// A constant position in the target dimension.
    Const(i64),
}

/// `!HPF$ ALIGN B(i) WITH A(i, *)` — alignment of `alignee` with `target`.
/// `dims[d]` describes target dimension `d`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignDirective {
    pub alignee: VarId,
    pub target: VarId,
    pub dims: Vec<AlignDim>,
}

impl AlignDirective {
    /// The identity alignment of a rank-`r` alignee with a rank-`r` target.
    pub fn identity(alignee: VarId, target: VarId, rank: usize) -> Self {
        AlignDirective {
            alignee,
            target,
            dims: (0..rank)
                .map(|d| AlignDim::Match {
                    alignee_dim: d,
                    stride: 1,
                    offset: 0,
                })
                .collect(),
        }
    }
}

/// Parallel-loop assertion attached to a `DO` statement.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndependentInfo {
    /// `INDEPENDENT` was asserted.
    pub independent: bool,
    /// Variables named in a `NEW(...)` clause: privatizable w.r.t. the loop.
    pub new_vars: Vec<VarId>,
    /// Weaker assertion: no *value-based* loop-carried dependences (phpf can
    /// infer privatizability of arrays written with loop-invariant or
    /// inner-affine subscripts from this).
    pub no_value_deps: bool,
}

/// All directives of a program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Directives {
    pub grid: Option<ProcGridDecl>,
    pub distributes: Vec<DistributeDirective>,
    pub aligns: Vec<AlignDirective>,
    pub independents: HashMap<StmtId, IndependentInfo>,
}

impl Directives {
    pub fn distribute_of(&self, array: VarId) -> Option<&DistributeDirective> {
        self.distributes.iter().find(|d| d.array == array)
    }

    pub fn align_of(&self, alignee: VarId) -> Option<&AlignDirective> {
        self.aligns.iter().find(|a| a.alignee == alignee)
    }

    pub fn independent_of(&self, loop_id: StmtId) -> Option<&IndependentInfo> {
        self.independents.get(&loop_id)
    }

    /// Is `var` named in a `NEW` clause of loop `loop_id`?
    pub fn is_new_var(&self, loop_id: StmtId, var: VarId) -> bool {
        self.independent_of(loop_id)
            .is_some_and(|i| i.new_vars.contains(&var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_totals() {
        let g = ProcGridDecl::new("P", vec![4, 4]);
        assert_eq!(g.total(), 16);
        assert_eq!(g.rank(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_grid_rejected() {
        ProcGridDecl::new("P", vec![]);
    }

    #[test]
    fn identity_alignment() {
        let a = AlignDirective::identity(VarId(0), VarId(1), 2);
        assert_eq!(a.dims.len(), 2);
        assert!(matches!(
            a.dims[1],
            AlignDim::Match {
                alignee_dim: 1,
                stride: 1,
                offset: 0
            }
        ));
    }

    #[test]
    fn directive_lookups() {
        let mut d = Directives::default();
        d.distributes.push(DistributeDirective {
            array: VarId(2),
            formats: vec![DistFormat::Block, DistFormat::Collapsed],
        });
        d.aligns
            .push(AlignDirective::identity(VarId(3), VarId(2), 1));
        let info = IndependentInfo {
            independent: true,
            new_vars: vec![VarId(5)],
            ..Default::default()
        };
        d.independents.insert(StmtId(7), info);

        assert!(d.distribute_of(VarId(2)).is_some());
        assert!(d.distribute_of(VarId(9)).is_none());
        assert_eq!(d.align_of(VarId(3)).unwrap().target, VarId(2));
        assert!(d.is_new_var(StmtId(7), VarId(5)));
        assert!(!d.is_new_var(StmtId(7), VarId(6)));
        assert!(!d.is_new_var(StmtId(8), VarId(5)));
    }

    #[test]
    fn dist_format_distributed() {
        assert!(DistFormat::Block.is_distributed());
        assert!(DistFormat::Cyclic.is_distributed());
        assert!(DistFormat::BlockCyclic(4).is_distributed());
        assert!(!DistFormat::Collapsed.is_distributed());
    }
}
