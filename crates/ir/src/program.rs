//! The program container: variable table, statement arena, directives, and
//! structural queries (parents, loop nesting) used by every analysis.

use crate::directives::Directives;
use crate::stmt::{Label, Stmt, StmtId, StmtNode};
use crate::types::{VarInfo, VarKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a variable in the [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned table of declared variables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VarTable {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
}

impl VarTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a variable; panics on duplicate names (Fortran would reject
    /// the program too).
    pub fn declare(&mut self, info: VarInfo) -> VarId {
        assert!(
            !self.by_name.contains_key(&info.name),
            "duplicate variable declaration: {}",
            info.name
        );
        let id = VarId(self.vars.len() as u32);
        self.by_name.insert(info.name.clone(), id);
        self.vars.push(info);
        id
    }

    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    pub fn arrays(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.iter().filter(|(_, v)| v.is_array())
    }

    pub fn scalars(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.iter().filter(|(_, v)| !v.is_array())
    }
}

/// A whole program: declarations, HPF directives, and a statement arena
/// whose roots are `body`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub vars: VarTable,
    pub directives: Directives,
    nodes: Vec<StmtNode>,
    pub body: Vec<StmtId>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a statement node to the arena (parent links are fixed up by
    /// [`Program::rebuild_topology`]).
    pub fn add_stmt(&mut self, stmt: Stmt) -> StmtId {
        let id = StmtId(self.nodes.len() as u32);
        self.nodes.push(StmtNode::new(stmt));
        id
    }

    pub fn set_label(&mut self, id: StmtId, label: Label) {
        self.nodes[id.index()].label = Some(label);
    }

    pub fn node(&self, id: StmtId) -> &StmtNode {
        &self.nodes[id.index()]
    }

    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.nodes[id.index()].stmt
    }

    pub fn stmt_mut(&mut self, id: StmtId) -> &mut Stmt {
        &mut self.nodes[id.index()].stmt
    }

    pub fn num_stmts(&self) -> usize {
        self.nodes.len()
    }

    /// Recompute parent links from the block structure. Must be called after
    /// construction (the builder and parser do this) and after any structural
    /// mutation.
    pub fn rebuild_topology(&mut self) {
        for n in &mut self.nodes {
            n.parent = None;
        }
        let mut fixups: Vec<(StmtId, StmtId)> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let pid = StmtId(i as u32);
            for block in n.stmt.blocks() {
                for &c in block {
                    fixups.push((c, pid));
                }
            }
        }
        for (child, parent) in fixups {
            self.nodes[child.index()].parent = Some(parent);
        }
    }

    pub fn parent(&self, id: StmtId) -> Option<StmtId> {
        self.nodes[id.index()].parent
    }

    /// All statements in pre-order (a statement before its children),
    /// starting from the program body.
    pub fn preorder(&self) -> Vec<StmtId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        fn rec(p: &Program, block: &[StmtId], out: &mut Vec<StmtId>) {
            for &id in block {
                out.push(id);
                for b in p.stmt(id).blocks() {
                    rec(p, b, out);
                }
            }
        }
        rec(self, &self.body, &mut out);
        out
    }

    /// The chain of enclosing `DO` loops of `id`, outermost first. Does not
    /// include `id` itself even if it is a loop.
    pub fn enclosing_loops(&self, id: StmtId) -> Vec<StmtId> {
        let mut chain = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if self.stmt(p).is_loop() {
                chain.push(p);
            }
            cur = self.parent(p);
        }
        chain.reverse();
        chain
    }

    /// Loop nesting level of a statement: number of enclosing `DO` loops.
    /// The paper numbers the outermost loop as level 1; a statement directly
    /// inside a level-1 loop has `nesting_level == 1`.
    pub fn nesting_level(&self, id: StmtId) -> usize {
        self.enclosing_loops(id).len()
    }

    /// The enclosing loop at a given 1-based level (1 = outermost), if the
    /// statement is that deeply nested.
    pub fn enclosing_loop_at_level(&self, id: StmtId, level: usize) -> Option<StmtId> {
        if level == 0 {
            return None;
        }
        self.enclosing_loops(id).get(level - 1).copied()
    }

    /// The innermost common enclosing loop of two statements, if any, plus
    /// its level.
    pub fn innermost_common_loop(&self, a: StmtId, b: StmtId) -> Option<(StmtId, usize)> {
        let la = self.enclosing_loops(a);
        let lb = self.enclosing_loops(b);
        let mut res = None;
        for (lvl, (x, y)) in la.iter().zip(lb.iter()).enumerate() {
            if x == y {
                res = Some((*x, lvl + 1));
            } else {
                break;
            }
        }
        res
    }

    /// True if `anc` is `id` or a structural ancestor of `id`.
    pub fn is_self_or_ancestor(&self, anc: StmtId, id: StmtId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// The loop variable of a `DO` statement.
    pub fn loop_var(&self, id: StmtId) -> Option<VarId> {
        match self.stmt(id) {
            Stmt::Do { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// The set of variables that are loop indices of some `DO` statement.
    pub fn loop_index_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for id in self.preorder() {
            if let Some(v) = self.loop_var(id) {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Find the statement carrying a given label.
    pub fn find_label(&self, label: Label) -> Option<StmtId> {
        self.nodes
            .iter()
            .position(|n| n.label == Some(label))
            .map(|i| StmtId(i as u32))
    }

    /// All `GOTO` targets transferred to by statement `id` (directly; an `IF`
    /// with GOTOs in its branches reports nothing here — query the GOTOs).
    pub fn goto_target(&self, id: StmtId) -> Option<StmtId> {
        match self.stmt(id) {
            Stmt::Goto(l) => self.find_label(*l),
            _ => None,
        }
    }

    /// Whether `id` (a control-flow statement) can transfer control to a
    /// target outside the body of loop `l`. Used by the paper's Section 4
    /// rule for privatizing control flow. `IF` statements are examined for
    /// `GOTO`s anywhere below them.
    pub fn transfers_outside(&self, id: StmtId, l: StmtId) -> bool {
        debug_assert!(self.stmt(l).is_loop());
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            if let Some(t) = self.goto_target(s) {
                if !self.is_self_or_ancestor(l, t) {
                    return true;
                }
            }
            for b in self.stmt(s).blocks() {
                stack.extend_from_slice(b);
            }
        }
        false
    }

    /// The siblings block containing `id`: the parent's block or the program
    /// body, along with the index of `id` within it.
    pub fn containing_block(&self, id: StmtId) -> (&[StmtId], usize) {
        let block: &[StmtId] = match self.parent(id) {
            None => &self.body,
            Some(p) => {
                let mut found: Option<&[StmtId]> = None;
                // Need a persistent borrow; search parent's blocks.
                let parent_stmt = self.stmt(p);
                for b in parent_stmt.blocks() {
                    if b.contains(&id) {
                        found = Some(b);
                        break;
                    }
                }
                found.expect("statement not found in its parent's blocks")
            }
        };
        let pos = block.iter().position(|&s| s == id).unwrap();
        (block, pos)
    }

    /// Basic structural validation; returns a list of problems (empty if
    /// well-formed). Checked by tests and by the compile driver.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        // Every stmt reachable from body exactly once.
        let pre = self.preorder();
        let mut seen = vec![false; self.nodes.len()];
        for &s in &pre {
            if seen[s.index()] {
                errs.push(format!("statement {:?} appears in two blocks", s));
            }
            seen[s.index()] = true;
        }
        // Array refs have matching rank; vars exist.
        for &s in &pre {
            for e in self.stmt(s).read_exprs() {
                e.walk(&mut |x| {
                    if let crate::expr::Expr::Array(r) = x {
                        let info = self.vars.info(r.array);
                        match &info.kind {
                            VarKind::Array(shape) => {
                                if shape.rank() != r.subs.len() {
                                    errs.push(format!(
                                        "rank mismatch on {}: declared {}, used {}",
                                        info.name,
                                        shape.rank(),
                                        r.subs.len()
                                    ));
                                }
                            }
                            VarKind::Scalar => {
                                errs.push(format!("scalar {} used as array", info.name))
                            }
                        }
                    }
                });
            }
            if let Stmt::Assign {
                lhs: crate::stmt::LValue::Array(r),
                ..
            } = self.stmt(s)
            {
                let info = self.vars.info(r.array);
                if info.rank() != r.subs.len() {
                    errs.push(format!("rank mismatch on lhs {}", info.name));
                }
            }
            if let Stmt::Goto(l) = self.stmt(s) {
                if self.find_label(*l).is_none() {
                    errs.push(format!("GOTO to undefined label {}", l.0));
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::LValue;
    use crate::types::ScalarTy;

    fn tiny() -> (Program, StmtId, StmtId, StmtId) {
        // do i = 1, 10
        //   do j = 1, 10
        //     s = 0
        let mut p = Program::new();
        let i = p.vars.declare(VarInfo::scalar("i", ScalarTy::Int));
        let j = p.vars.declare(VarInfo::scalar("j", ScalarTy::Int));
        let s = p.vars.declare(VarInfo::scalar("s", ScalarTy::Real));
        let asg = p.add_stmt(Stmt::Assign {
            lhs: LValue::Scalar(s),
            rhs: Expr::real(0.0),
        });
        let inner = p.add_stmt(Stmt::Do {
            var: j,
            lo: Expr::int(1),
            hi: Expr::int(10),
            step: Expr::int(1),
            body: vec![asg],
        });
        let outer = p.add_stmt(Stmt::Do {
            var: i,
            lo: Expr::int(1),
            hi: Expr::int(10),
            step: Expr::int(1),
            body: vec![inner],
        });
        p.body = vec![outer];
        p.rebuild_topology();
        (p, outer, inner, asg)
    }

    #[test]
    fn topology_and_levels() {
        let (p, outer, inner, asg) = tiny();
        assert_eq!(p.parent(asg), Some(inner));
        assert_eq!(p.parent(inner), Some(outer));
        assert_eq!(p.parent(outer), None);
        assert_eq!(p.nesting_level(asg), 2);
        assert_eq!(p.nesting_level(inner), 1);
        assert_eq!(p.nesting_level(outer), 0);
        assert_eq!(p.enclosing_loops(asg), vec![outer, inner]);
        assert_eq!(p.enclosing_loop_at_level(asg, 1), Some(outer));
        assert_eq!(p.enclosing_loop_at_level(asg, 2), Some(inner));
        assert_eq!(p.enclosing_loop_at_level(asg, 3), None);
    }

    #[test]
    fn preorder_is_parent_first() {
        let (p, outer, inner, asg) = tiny();
        assert_eq!(p.preorder(), vec![outer, inner, asg]);
    }

    #[test]
    fn common_loop() {
        let (p, outer, inner, asg) = tiny();
        assert_eq!(p.innermost_common_loop(asg, asg), Some((inner, 2)));
        assert_eq!(p.innermost_common_loop(asg, inner), Some((outer, 1)));
        assert_eq!(p.innermost_common_loop(outer, outer), None);
    }

    #[test]
    fn validate_clean_program() {
        let (p, ..) = tiny();
        assert!(p.validate().is_empty());
    }

    #[test]
    fn labels_and_gotos() {
        let mut p = Program::new();
        let g = p.add_stmt(Stmt::Goto(Label(100)));
        let c = p.add_stmt(Stmt::Continue);
        p.set_label(c, Label(100));
        p.body = vec![g, c];
        p.rebuild_topology();
        assert_eq!(p.find_label(Label(100)), Some(c));
        assert_eq!(p.goto_target(g), Some(c));
        assert!(p.validate().is_empty());
    }

    #[test]
    fn goto_outside_loop_detected() {
        // do i: { if (..) goto 100 }  ; 100 continue (outside loop)
        let mut p = Program::new();
        let i = p.vars.declare(VarInfo::scalar("i", ScalarTy::Int));
        let g = p.add_stmt(Stmt::Goto(Label(100)));
        let iff = p.add_stmt(Stmt::If {
            cond: Expr::BoolLit(true),
            then_body: vec![g],
            else_body: vec![],
        });
        let lp = p.add_stmt(Stmt::Do {
            var: i,
            lo: Expr::int(1),
            hi: Expr::int(4),
            step: Expr::int(1),
            body: vec![iff],
        });
        let c = p.add_stmt(Stmt::Continue);
        p.set_label(c, Label(100));
        p.body = vec![lp, c];
        p.rebuild_topology();
        assert!(p.transfers_outside(iff, lp));

        // Now a goto to a label inside the loop does not escape.
        let mut p2 = Program::new();
        let i2 = p2.vars.declare(VarInfo::scalar("i", ScalarTy::Int));
        let g2 = p2.add_stmt(Stmt::Goto(Label(10)));
        let c2 = p2.add_stmt(Stmt::Continue);
        p2.set_label(c2, Label(10));
        let lp2 = p2.add_stmt(Stmt::Do {
            var: i2,
            lo: Expr::int(1),
            hi: Expr::int(4),
            step: Expr::int(1),
            body: vec![g2, c2],
        });
        p2.body = vec![lp2];
        p2.rebuild_topology();
        assert!(!p2.transfers_outside(g2, lp2));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_declare_panics() {
        let mut t = VarTable::new();
        t.declare(VarInfo::scalar("x", ScalarTy::Int));
        t.declare(VarInfo::scalar("x", ScalarTy::Real));
    }
}
