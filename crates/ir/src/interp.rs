//! Sequential interpreter — the golden semantics of a program.
//!
//! Every SPMD lowering produced by the rest of the workspace is validated
//! against this interpreter: the paper's privatization and mapping decisions
//! must never change program results, only where computation and data live.

use crate::expr::{BinOp, Expr, Intrinsic, UnOp};
use crate::program::{Program, VarId};
use crate::stmt::{LValue, Label, Stmt, StmtId};
use crate::types::{ScalarTy, VarKind};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Real(f64),
    Bool(bool),
}

impl Value {
    pub fn zero(ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::Int => Value::Int(0),
            ScalarTy::Real => Value::Real(0.0),
            ScalarTy::Bool => Value::Bool(false),
        }
    }

    pub fn as_int(self) -> Result<i64, InterpError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Real(v) => Ok(v as i64),
            Value::Bool(_) => Err(InterpError::TypeError("LOGICAL used as INTEGER".into())),
        }
    }

    pub fn as_real(self) -> Result<f64, InterpError> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::Real(v) => Ok(v),
            Value::Bool(_) => Err(InterpError::TypeError("LOGICAL used as REAL".into())),
        }
    }

    pub fn as_bool(self) -> Result<bool, InterpError> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(InterpError::TypeError("numeric used as LOGICAL".into())),
        }
    }

    /// Coerce to the declared type of an assignment target (Fortran implicit
    /// conversion on assignment).
    pub fn coerce(self, ty: ScalarTy) -> Result<Value, InterpError> {
        Ok(match ty {
            ScalarTy::Int => Value::Int(self.as_int()?),
            ScalarTy::Real => Value::Real(self.as_real()?),
            ScalarTy::Bool => Value::Bool(self.as_bool()?),
        })
    }
}

/// Array element storage, one variant per elemental type.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayStore {
    Int(Vec<i64>),
    Real(Vec<f64>),
    Bool(Vec<bool>),
}

impl ArrayStore {
    pub fn zeroed(ty: ScalarTy, len: usize) -> ArrayStore {
        match ty {
            ScalarTy::Int => ArrayStore::Int(vec![0; len]),
            ScalarTy::Real => ArrayStore::Real(vec![0.0; len]),
            ScalarTy::Bool => ArrayStore::Bool(vec![false; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ArrayStore::Int(v) => v.len(),
            ArrayStore::Real(v) => v.len(),
            ArrayStore::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, i: usize) -> Value {
        match self {
            ArrayStore::Int(v) => Value::Int(v[i]),
            ArrayStore::Real(v) => Value::Real(v[i]),
            ArrayStore::Bool(v) => Value::Bool(v[i]),
        }
    }

    pub fn set(&mut self, i: usize, val: Value) -> Result<(), InterpError> {
        match self {
            ArrayStore::Int(v) => v[i] = val.as_int()?,
            ArrayStore::Real(v) => v[i] = val.as_real()?,
            ArrayStore::Bool(v) => v[i] = val.as_bool()?,
        }
        Ok(())
    }
}

/// Flat memory for one run: scalars and arrays indexed by [`VarId`].
/// All storage is zero-initialized (documented deviation from Fortran's
/// "undefined" semantics; it makes runs deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    pub scalars: Vec<Value>,
    pub arrays: Vec<Option<ArrayStore>>,
}

impl Memory {
    pub fn zeroed(p: &Program) -> Memory {
        let mut scalars = Vec::with_capacity(p.vars.len());
        let mut arrays = Vec::with_capacity(p.vars.len());
        for (_, info) in p.vars.iter() {
            match &info.kind {
                VarKind::Scalar => {
                    scalars.push(Value::zero(info.ty));
                    arrays.push(None);
                }
                VarKind::Array(shape) => {
                    scalars.push(Value::zero(info.ty));
                    arrays.push(Some(ArrayStore::zeroed(info.ty, shape.len() as usize)));
                }
            }
        }
        Memory { scalars, arrays }
    }

    pub fn set_scalar(&mut self, v: VarId, val: Value) {
        self.scalars[v.index()] = val;
    }

    pub fn scalar(&self, v: VarId) -> Value {
        self.scalars[v.index()]
    }

    pub fn array(&self, v: VarId) -> &ArrayStore {
        self.arrays[v.index()].as_ref().expect("not an array")
    }

    pub fn array_mut(&mut self, v: VarId) -> &mut ArrayStore {
        self.arrays[v.index()].as_mut().expect("not an array")
    }

    /// Fill a real array from a slice (column-major order).
    pub fn fill_real(&mut self, v: VarId, data: &[f64]) {
        match self.array_mut(v) {
            ArrayStore::Real(dst) => {
                assert_eq!(dst.len(), data.len());
                dst.copy_from_slice(data);
            }
            _ => panic!("fill_real on non-real array"),
        }
    }

    /// Read a real array as a flat slice.
    pub fn real_slice(&self, v: VarId) -> &[f64] {
        match self.array(v) {
            ArrayStore::Real(d) => d,
            _ => panic!("real_slice on non-real array"),
        }
    }
}

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    TypeError(String),
    OutOfBounds {
        array: String,
        index: Vec<i64>,
    },
    DivisionByZero,
    /// Step budget exceeded (guards against runaway GOTO cycles).
    StepLimit,
    UnresolvedGoto(u32),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::TypeError(m) => write!(f, "type error: {}", m),
            InterpError::OutOfBounds { array, index } => {
                write!(f, "index {:?} out of bounds for {}", index, array)
            }
            InterpError::DivisionByZero => write!(f, "integer division by zero"),
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
            InterpError::UnresolvedGoto(l) => write!(f, "GOTO {} left the program", l),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics of a sequential run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Number of statement executions.
    pub steps: u64,
    /// Number of arithmetic operations evaluated (flop-ish count).
    pub ops: u64,
}

enum Flow {
    Normal,
    Goto(Label),
}

/// The sequential interpreter.
pub struct Interp<'p> {
    program: &'p Program,
    pub step_limit: u64,
    stats: InterpStats,
}

impl<'p> Interp<'p> {
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            step_limit: 5_000_000_000,
            stats: InterpStats::default(),
        }
    }

    /// Run the whole program against `mem`.
    pub fn run(mut self, mem: &mut Memory) -> Result<InterpStats, InterpError> {
        let body: Vec<StmtId> = self.program.body.clone();
        match self.exec_block(&body, mem)? {
            Flow::Normal => Ok(self.stats),
            Flow::Goto(l) => Err(InterpError::UnresolvedGoto(l.0)),
        }
    }

    fn exec_block(&mut self, block: &[StmtId], mem: &mut Memory) -> Result<Flow, InterpError> {
        let mut idx = 0;
        while idx < block.len() {
            match self.exec_stmt(block[idx], mem)? {
                Flow::Normal => idx += 1,
                Flow::Goto(l) => {
                    // Resolve within this block if possible, else propagate.
                    match block
                        .iter()
                        .position(|&s| self.program.node(s).label == Some(l))
                    {
                        Some(pos) => idx = pos,
                        None => return Ok(Flow::Goto(l)),
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, id: StmtId, mem: &mut Memory) -> Result<Flow, InterpError> {
        self.stats.steps += 1;
        if self.stats.steps > self.step_limit {
            return Err(InterpError::StepLimit);
        }
        match self.program.stmt(id) {
            Stmt::Assign { lhs, rhs } => {
                let val = self.eval(rhs, mem)?;
                match lhs {
                    LValue::Scalar(v) => {
                        let ty = self.program.vars.info(*v).ty;
                        mem.set_scalar(*v, val.coerce(ty)?);
                    }
                    LValue::Array(r) => {
                        let ty = self.program.vars.info(r.array).ty;
                        let off = self.array_offset(r.array, &r.subs, mem)?;
                        mem.array_mut(r.array).set(off, val.coerce(ty)?)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = self.eval(lo, mem)?.as_int()?;
                let hi = self.eval(hi, mem)?.as_int()?;
                let step = self.eval(step, mem)?.as_int()?;
                if step == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                let body = body.clone();
                let var = *var;
                let mut i = lo;
                while (step > 0 && i <= hi) || (step < 0 && i >= hi) {
                    mem.set_scalar(var, Value::Int(i));
                    match self.exec_block(&body, mem)? {
                        Flow::Normal => {}
                        // A GOTO escaping the loop body exits the loop
                        // (Fortran: branch out of DO).
                        Flow::Goto(l) => return Ok(Flow::Goto(l)),
                    }
                    i += step;
                }
                // Fortran leaves the DO variable at the first out-of-range
                // value after normal termination.
                mem.set_scalar(var, Value::Int(i));
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, mem)?.as_bool()?;
                let b = if c { then_body.clone() } else { else_body.clone() };
                self.exec_block(&b, mem)
            }
            Stmt::Goto(l) => Ok(Flow::Goto(*l)),
            Stmt::Continue => Ok(Flow::Normal),
        }
    }

    fn array_offset(
        &mut self,
        array: VarId,
        subs: &[Expr],
        mem: &mut Memory,
    ) -> Result<usize, InterpError> {
        let mut idx = Vec::with_capacity(subs.len());
        for s in subs {
            idx.push(self.eval(s, mem)?.as_int()?);
        }
        let info = self.program.vars.info(array);
        let shape = info.shape().expect("array ref to scalar");
        if !shape.contains(&idx) {
            return Err(InterpError::OutOfBounds {
                array: info.name.clone(),
                index: idx,
            });
        }
        Ok(shape.linearize(&idx))
    }

    /// Evaluate an expression.
    pub fn eval(&mut self, e: &Expr, mem: &mut Memory) -> Result<Value, InterpError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::RealLit(v) => Ok(Value::Real(*v)),
            Expr::BoolLit(b) => Ok(Value::Bool(*b)),
            Expr::Scalar(v) => Ok(mem.scalar(*v)),
            Expr::Array(r) => {
                let off = self.array_offset(r.array, &r.subs, mem)?;
                Ok(mem.array(r.array).get(off))
            }
            Expr::Unary(op, x) => {
                let v = self.eval(x, mem)?;
                self.stats.ops += 1;
                match op {
                    UnOp::Neg => Ok(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Real(r) => Value::Real(-r),
                        Value::Bool(_) => {
                            return Err(InterpError::TypeError("negating LOGICAL".into()))
                        }
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, mem)?;
                let vb = self.eval(b, mem)?;
                self.stats.ops += 1;
                self.binop(*op, va, vb)
            }
            Expr::Intrinsic(i, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, mem)?);
                }
                self.stats.ops += 1;
                self.intrinsic(*i, &vals)
            }
        }
    }

    fn binop(&self, op: BinOp, a: Value, b: Value) -> Result<Value, InterpError> {
        eval_binop(op, a, b)
    }

    fn intrinsic(&self, i: Intrinsic, vals: &[Value]) -> Result<Value, InterpError> {
        eval_intrinsic(i, vals)
    }
}

/// Evaluate a binary operator on runtime values (shared by the sequential
/// interpreter and the SPMD executor).
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, InterpError> {
    {
        use BinOp::*;
        if op.is_logical() {
            let (x, y) = (a.as_bool()?, b.as_bool()?);
            return Ok(Value::Bool(match op {
                And => x && y,
                Or => x || y,
                _ => unreachable!(),
            }));
        }
        // Integer arithmetic when both sides are Int, else real.
        let both_int = matches!((a, b), (Value::Int(_), Value::Int(_)));
        if op.is_comparison() {
            let r = if both_int {
                let (x, y) = (a.as_int()?, b.as_int()?);
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_real()?, b.as_real()?);
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            return Ok(Value::Bool(r));
        }
        if both_int {
            let (x, y) = (a.as_int()?, b.as_int()?);
            Ok(Value::Int(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(InterpError::DivisionByZero);
                    }
                    // Fortran integer division truncates toward zero.
                    x / y
                }
                Pow => {
                    if y < 0 {
                        0
                    } else {
                        x.wrapping_pow(y.min(u32::MAX as i64) as u32)
                    }
                }
                _ => unreachable!(),
            }))
        } else {
            let (x, y) = (a.as_real()?, b.as_real()?);
            Ok(Value::Real(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Pow => x.powf(y),
                _ => unreachable!(),
            }))
        }
    }
}

/// Evaluate an intrinsic on runtime values (shared by the sequential
/// interpreter and the SPMD executor).
pub fn eval_intrinsic(i: Intrinsic, vals: &[Value]) -> Result<Value, InterpError> {
    {
        match i {
            Intrinsic::Abs => Ok(match vals[0] {
                Value::Int(v) => Value::Int(v.abs()),
                Value::Real(v) => Value::Real(v.abs()),
                Value::Bool(_) => return Err(InterpError::TypeError("ABS of LOGICAL".into())),
            }),
            Intrinsic::Sqrt => Ok(Value::Real(vals[0].as_real()?.sqrt())),
            Intrinsic::Exp => Ok(Value::Real(vals[0].as_real()?.exp())),
            Intrinsic::Max | Intrinsic::Min => {
                let both_int = matches!((vals[0], vals[1]), (Value::Int(_), Value::Int(_)));
                if both_int {
                    let (x, y) = (vals[0].as_int()?, vals[1].as_int()?);
                    Ok(Value::Int(if i == Intrinsic::Max {
                        x.max(y)
                    } else {
                        x.min(y)
                    }))
                } else {
                    let (x, y) = (vals[0].as_real()?, vals[1].as_real()?);
                    Ok(Value::Real(if i == Intrinsic::Max {
                        x.max(y)
                    } else {
                        x.min(y)
                    }))
                }
            }
            Intrinsic::Mod => {
                let both_int = matches!((vals[0], vals[1]), (Value::Int(_), Value::Int(_)));
                if both_int {
                    let (x, y) = (vals[0].as_int()?, vals[1].as_int()?);
                    if y == 0 {
                        return Err(InterpError::DivisionByZero);
                    }
                    Ok(Value::Int(x % y))
                } else {
                    let (x, y) = (vals[0].as_real()?, vals[1].as_real()?);
                    Ok(Value::Real(x % y))
                }
            }
            Intrinsic::Sign => {
                let (x, y) = (vals[0].as_real()?, vals[1].as_real()?);
                Ok(Value::Real(if y >= 0.0 { x.abs() } else { -x.abs() }))
            }
        }
    }
}

/// Convenience: run a program on zeroed memory (after applying `init`) and
/// return the final memory.
pub fn run_program(
    p: &Program,
    init: impl FnOnce(&mut Memory),
) -> Result<(Memory, InterpStats), InterpError> {
    let mut mem = Memory::zeroed(p);
    init(&mut mem);
    let stats = Interp::new(p).run(&mut mem)?;
    Ok((mem, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;

    #[test]
    fn loop_with_induction() {
        // m = 2; do i = 2, 9 { m = m + 1; D(m) = i }
        let mut b = ProgramBuilder::new();
        let d = b.int_array("D", &[12]);
        let i = b.int_scalar("i");
        let m = b.int_scalar("m");
        b.assign_scalar(m, Expr::int(2));
        b.do_loop(i, Expr::int(2), Expr::int(9), |b| {
            b.assign_scalar(m, Expr::scalar(m).add(Expr::int(1)));
            b.assign_array(d, vec![Expr::scalar(m)], Expr::scalar(i));
        });
        let p = b.finish();
        let (mem, stats) = run_program(&p, |_| {}).unwrap();
        match mem.array(d) {
            ArrayStore::Int(v) => {
                // D(3..=10) = 2..=9
                assert_eq!(&v[2..10], &[2, 3, 4, 5, 6, 7, 8, 9]);
            }
            _ => unreachable!(),
        }
        assert!(stats.steps > 8);
    }

    #[test]
    fn goto_exits_loop() {
        // do i = 1, 100 { s = s + 1; if (i >= 3) goto 100 } ; 100 continue
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        let s = b.int_scalar("s");
        b.do_loop(i, Expr::int(1), Expr::int(100), |b| {
            b.assign_scalar(s, Expr::scalar(s).add(Expr::int(1)));
            b.if_then(Expr::scalar(i).cmp(BinOp::Ge, Expr::int(3)), |b| {
                b.goto(100);
            });
        });
        b.continue_label(100);
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(s), Value::Int(3));
    }

    #[test]
    fn backward_goto_loop() {
        // k = 0; 10 k = k + 1; if (k < 5) goto 10
        let mut b = ProgramBuilder::new();
        let k = b.int_scalar("k");
        b.assign_scalar(k, Expr::int(0));
        let inc = b.assign_scalar(k, Expr::scalar(k).add(Expr::int(1)));
        b.label_stmt(inc, 10);
        b.if_then(Expr::scalar(k).cmp(BinOp::Lt, Expr::int(5)), |b| {
            b.goto(10);
        });
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(k), Value::Int(5));
    }

    #[test]
    fn reduction_sum() {
        // s = 0; do j = 1, n { s = s + A(j) }
        let n = 16i64;
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[n]);
        let j = b.int_scalar("j");
        let s = b.real_scalar("s");
        b.assign_scalar(s, Expr::real(0.0));
        b.do_loop(j, Expr::int(1), Expr::int(n), |b| {
            b.assign_scalar(
                s,
                Expr::scalar(s).add(Expr::array(a, vec![Expr::scalar(j)])),
            );
        });
        let p = b.finish();
        let (mem, _) = run_program(&p, |m| {
            let data: Vec<f64> = (1..=n).map(|x| x as f64).collect();
            m.fill_real(a, &data);
        })
        .unwrap();
        assert_eq!(mem.scalar(s), Value::Real((n * (n + 1) / 2) as f64));
    }

    #[test]
    fn if_else_branches() {
        let mut b = ProgramBuilder::new();
        let x = b.int_scalar("x");
        let y = b.int_scalar("y");
        b.assign_scalar(x, Expr::int(7));
        b.if_then_else(
            Expr::scalar(x).cmp(BinOp::Gt, Expr::int(10)),
            |b| {
                b.assign_scalar(y, Expr::int(1));
            },
            |b| {
                b.assign_scalar(y, Expr::int(2));
            },
        );
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(y), Value::Int(2));
    }

    #[test]
    fn oob_is_reported() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[4]);
        b.assign_array(a, vec![Expr::int(5)], Expr::real(1.0));
        let p = b.finish();
        let err = run_program(&p, |_| {}).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }));
    }

    #[test]
    fn intrinsics() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        b.assign_scalar(x, Expr::Intrinsic(Intrinsic::Sqrt, vec![Expr::real(9.0)]));
        b.assign_scalar(
            y,
            Expr::Intrinsic(
                Intrinsic::Sign,
                vec![Expr::real(5.0), Expr::real(-2.0)],
            ),
        );
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(x), Value::Real(3.0));
        assert_eq!(mem.scalar(y), Value::Real(-5.0));
    }

    #[test]
    fn integer_division_truncates() {
        let mut b = ProgramBuilder::new();
        let x = b.int_scalar("x");
        b.assign_scalar(x, Expr::int(7).div(Expr::int(2)));
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(x), Value::Int(3));
    }

    #[test]
    fn do_step_negative() {
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        let s = b.int_scalar("s");
        b.do_loop_step(i, Expr::int(10), Expr::int(1), Expr::int(-2), |b| {
            b.assign_scalar(s, Expr::scalar(s).add(Expr::scalar(i)));
        });
        let p = b.finish();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(s), Value::Int(10 + 8 + 6 + 4 + 2));
    }
}
