//! Affine forms `c0 + Σ c_v · v` over integer scalar variables, and
//! recognition of affine expressions.
//!
//! The paper's subscript analysis (`SubscriptAlignLevel`, dependence tests,
//! ownership of references) operates on affine subscript functions of loop
//! indices; everything else is treated symbolically.

use crate::expr::{BinOp, Expr, UnOp};
use crate::program::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An affine integer form: constant plus integer-coefficient terms over
/// variables. Terms with zero coefficient are never stored.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Affine {
    pub c0: i64,
    pub terms: BTreeMap<VarId, i64>,
}

impl Affine {
    pub fn constant(c: i64) -> Self {
        Affine {
            c0: c,
            terms: BTreeMap::new(),
        }
    }

    pub fn var(v: VarId) -> Self {
        let mut t = BTreeMap::new();
        t.insert(v, 1);
        Affine { c0: 0, terms: t }
    }

    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn as_const(&self) -> Option<i64> {
        if self.is_const() {
            Some(self.c0)
        } else {
            None
        }
    }

    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    pub fn depends_on(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// Variables with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.keys().copied()
    }

    pub fn add(&self, o: &Affine) -> Affine {
        let mut r = self.clone();
        r.c0 += o.c0;
        for (&v, &c) in &o.terms {
            let e = r.terms.entry(v).or_insert(0);
            *e += c;
            if *e == 0 {
                r.terms.remove(&v);
            }
        }
        r
    }

    pub fn sub(&self, o: &Affine) -> Affine {
        self.add(&o.scale(-1))
    }

    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            c0: self.c0 * k,
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
        }
    }

    /// Evaluate under an environment giving values for all variables that
    /// occur. Returns `None` if some variable is missing.
    pub fn eval(&self, env: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        let mut acc = self.c0;
        for (&v, &c) in &self.terms {
            acc += c * env(v)?;
        }
        Some(acc)
    }

    /// Substitute an affine form for a variable.
    pub fn substitute(&self, v: VarId, repl: &Affine) -> Affine {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut base = self.clone();
        base.terms.remove(&v);
        base.add(&repl.scale(c))
    }

    /// Attempt to recognize `e` as an affine form. `Mul` is accepted only
    /// when one side reduces to a constant; `Div`, intrinsics, reals and
    /// array reads make the expression non-affine.
    pub fn from_expr(e: &Expr) -> Option<Affine> {
        match e {
            Expr::IntLit(v) => Some(Affine::constant(*v)),
            Expr::Scalar(v) => Some(Affine::var(*v)),
            Expr::Unary(UnOp::Neg, x) => Some(Affine::from_expr(x)?.scale(-1)),
            Expr::Binary(BinOp::Add, a, b) => {
                Some(Affine::from_expr(a)?.add(&Affine::from_expr(b)?))
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                Some(Affine::from_expr(a)?.sub(&Affine::from_expr(b)?))
            }
            Expr::Binary(BinOp::Mul, a, b) => {
                let fa = Affine::from_expr(a)?;
                let fb = Affine::from_expr(b)?;
                if let Some(k) = fa.as_const() {
                    Some(fb.scale(k))
                } else {
                    fb.as_const().map(|k| fa.scale(k))
                }
            }
            _ => None,
        }
    }

    /// Render back to an expression tree (used by induction-variable
    /// closed-form substitution).
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = if self.c0 != 0 || self.terms.is_empty() {
            Some(Expr::int(self.c0))
        } else {
            None
        };
        for (&v, &c) in &self.terms {
            let term = if c == 1 {
                Expr::scalar(v)
            } else {
                Expr::int(c).mul(Expr::scalar(v))
            };
            acc = Some(match acc {
                None => term,
                Some(a) => a.add(term),
            });
        }
        acc.unwrap()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c0)?;
        for (v, c) in &self.terms {
            write!(f, " + {}*v{}", c, v.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn recognize_basic_forms() {
        // 2*i + j - 3
        let e = Expr::int(2)
            .mul(Expr::scalar(v(0)))
            .add(Expr::scalar(v(1)))
            .sub(Expr::int(3));
        let a = Affine::from_expr(&e).unwrap();
        assert_eq!(a.c0, -3);
        assert_eq!(a.coeff(v(0)), 2);
        assert_eq!(a.coeff(v(1)), 1);
    }

    #[test]
    fn reject_nonaffine() {
        let e = Expr::scalar(v(0)).mul(Expr::scalar(v(1)));
        assert!(Affine::from_expr(&e).is_none());
        let e2 = Expr::array(v(2), vec![Expr::int(1)]);
        assert!(Affine::from_expr(&e2).is_none());
        let e3 = Expr::scalar(v(0)).div(Expr::int(2));
        assert!(Affine::from_expr(&e3).is_none());
    }

    #[test]
    fn cancel_to_constant() {
        // i - i + 5
        let e = Expr::scalar(v(0)).sub(Expr::scalar(v(0))).add(Expr::int(5));
        let a = Affine::from_expr(&e).unwrap();
        assert_eq!(a.as_const(), Some(5));
    }

    #[test]
    fn eval_and_substitute() {
        let a = Affine::var(v(0)).scale(3).add(&Affine::constant(1)); // 3i + 1
        assert_eq!(a.eval(&|x| if x == v(0) { Some(4) } else { None }), Some(13));
        assert_eq!(a.eval(&|_| None), None);

        // substitute i := j + 2   =>  3j + 7
        let r = Affine::var(v(1)).add(&Affine::constant(2));
        let s = a.substitute(v(0), &r);
        assert_eq!(s.c0, 7);
        assert_eq!(s.coeff(v(1)), 3);
        assert_eq!(s.coeff(v(0)), 0);
    }

    #[test]
    fn to_expr_roundtrip() {
        let a = Affine {
            c0: -2,
            terms: [(v(0), 3), (v(1), -1)].into_iter().collect(),
        };
        let back = Affine::from_expr(&a.to_expr()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn zero_coeff_never_stored() {
        let a = Affine::var(v(0)).sub(&Affine::var(v(0)));
        assert!(a.terms.is_empty());
        let b = Affine::var(v(0)).scale(0);
        assert!(b.terms.is_empty());
    }
}
