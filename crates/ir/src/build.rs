//! A programmatic builder for [`Program`]s.
//!
//! The benchmark kernels construct their IR through this API; closures are
//! used for block structure:
//!
//! ```
//! use hpf_ir::{ProgramBuilder, Expr, DistFormat};
//!
//! let mut b = ProgramBuilder::new();
//! let a = b.real_array("A", &[16]);
//! let i = b.int_scalar("i");
//! b.processors("P", &[4]);
//! b.distribute(a, vec![DistFormat::Block]);
//! b.do_loop(i, Expr::int(1), Expr::int(15), |b| {
//!     b.assign_array(a, vec![Expr::scalar(i).add(Expr::int(1))],
//!                    Expr::array(a, vec![Expr::scalar(i)]).mul(Expr::real(2.0)));
//! });
//! let program = b.finish();
//! assert!(program.validate().is_empty());
//! ```

use crate::directives::{
    AlignDim, AlignDirective, DistFormat, DistributeDirective, ProcGridDecl,
};
use crate::expr::{ArrayRef, Expr};
use crate::program::{Program, VarId};
use crate::stmt::{LValue, Label, Stmt, StmtId};
use crate::types::{ArrayShape, ScalarTy, VarInfo};

/// Builder for [`Program`]. See the module docs for usage.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    /// Stack of open statement blocks; index 0 is the program body.
    blocks: Vec<Vec<StmtId>>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::new(),
            blocks: vec![Vec::new()],
        }
    }

    // ---- declarations ------------------------------------------------

    pub fn scalar(&mut self, name: &str, ty: ScalarTy) -> VarId {
        self.program.vars.declare(VarInfo::scalar(name, ty))
    }

    pub fn int_scalar(&mut self, name: &str) -> VarId {
        self.scalar(name, ScalarTy::Int)
    }

    pub fn real_scalar(&mut self, name: &str) -> VarId {
        self.scalar(name, ScalarTy::Real)
    }

    pub fn bool_scalar(&mut self, name: &str) -> VarId {
        self.scalar(name, ScalarTy::Bool)
    }

    pub fn array(&mut self, name: &str, ty: ScalarTy, extents: &[i64]) -> VarId {
        self.program
            .vars
            .declare(VarInfo::array(name, ty, ArrayShape::of_extents(extents)))
    }

    pub fn real_array(&mut self, name: &str, extents: &[i64]) -> VarId {
        self.array(name, ScalarTy::Real, extents)
    }

    pub fn int_array(&mut self, name: &str, extents: &[i64]) -> VarId {
        self.array(name, ScalarTy::Int, extents)
    }

    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.program.vars.lookup(name)
    }

    // ---- directives ----------------------------------------------------

    pub fn processors(&mut self, name: &str, dims: &[usize]) {
        self.program.directives.grid = Some(ProcGridDecl::new(name, dims.to_vec()));
    }

    pub fn distribute(&mut self, array: VarId, formats: Vec<DistFormat>) {
        assert_eq!(
            formats.len(),
            self.program.vars.info(array).rank(),
            "DISTRIBUTE format count must match array rank"
        );
        self.program
            .directives
            .distributes
            .push(DistributeDirective { array, formats });
    }

    pub fn align(&mut self, alignee: VarId, target: VarId, dims: Vec<AlignDim>) {
        self.program.directives.aligns.push(AlignDirective {
            alignee,
            target,
            dims,
        });
    }

    pub fn align_identity(&mut self, alignee: VarId, target: VarId) {
        let rank = self.program.vars.info(alignee).rank().max(1);
        self.program
            .directives
            .aligns
            .push(AlignDirective::identity(alignee, target, rank));
    }

    /// Attach `INDEPENDENT, NEW(new_vars)` to a loop built earlier.
    pub fn independent(&mut self, loop_id: StmtId, new_vars: Vec<VarId>) {
        let info = self
            .program
            .directives
            .independents
            .entry(loop_id)
            .or_default();
        info.independent = true;
        info.new_vars.extend(new_vars);
    }

    /// Attach the weaker "no value-based loop-carried dependences" assertion.
    pub fn no_value_deps(&mut self, loop_id: StmtId) {
        let info = self
            .program
            .directives
            .independents
            .entry(loop_id)
            .or_default();
        info.no_value_deps = true;
    }

    // ---- statements ----------------------------------------------------

    fn push(&mut self, stmt: Stmt) -> StmtId {
        let id = self.program.add_stmt(stmt);
        self.blocks
            .last_mut()
            .expect("builder block stack is never empty")
            .push(id);
        id
    }

    pub fn assign(&mut self, lhs: LValue, rhs: Expr) -> StmtId {
        self.push(Stmt::Assign { lhs, rhs })
    }

    pub fn assign_scalar(&mut self, var: VarId, rhs: Expr) -> StmtId {
        self.assign(LValue::Scalar(var), rhs)
    }

    pub fn assign_array(&mut self, array: VarId, subs: Vec<Expr>, rhs: Expr) -> StmtId {
        self.assign(LValue::Array(ArrayRef::new(array, subs)), rhs)
    }

    /// `DO var = lo, hi` with unit step.
    pub fn do_loop(
        &mut self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        f: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.do_loop_step(var, lo, hi, Expr::int(1), f)
    }

    pub fn do_loop_step(
        &mut self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: Expr,
        f: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.blocks.push(Vec::new());
        f(self);
        let body = self.blocks.pop().unwrap();
        self.push(Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    pub fn if_then(&mut self, cond: Expr, f: impl FnOnce(&mut Self)) -> StmtId {
        self.blocks.push(Vec::new());
        f(self);
        let then_body = self.blocks.pop().unwrap();
        self.push(Stmt::If {
            cond,
            then_body,
            else_body: vec![],
        })
    }

    pub fn if_then_else(
        &mut self,
        cond: Expr,
        f_then: impl FnOnce(&mut Self),
        f_else: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.blocks.push(Vec::new());
        f_then(self);
        let then_body = self.blocks.pop().unwrap();
        self.blocks.push(Vec::new());
        f_else(self);
        let else_body = self.blocks.pop().unwrap();
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    pub fn goto(&mut self, label: u32) -> StmtId {
        self.push(Stmt::Goto(Label(label)))
    }

    /// A labelled `CONTINUE` statement (GOTO target).
    pub fn continue_label(&mut self, label: u32) -> StmtId {
        let id = self.push(Stmt::Continue);
        self.program.set_label(id, Label(label));
        id
    }

    /// Attach a numeric label to an already-built statement.
    pub fn label_stmt(&mut self, id: StmtId, label: u32) {
        self.program.set_label(id, Label(label));
    }

    // ---- finish ----------------------------------------------------------

    /// Seal the program: install the body, rebuild parent links and assert
    /// structural validity.
    pub fn finish(mut self) -> Program {
        assert_eq!(self.blocks.len(), 1, "unclosed block in builder");
        self.program.body = self.blocks.pop().unwrap();
        self.program.rebuild_topology();
        let errs = self.program.validate();
        assert!(errs.is_empty(), "invalid program: {:?}", errs);
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_nested_loops() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[10, 10]);
        let i = b.int_scalar("i");
        let j = b.int_scalar("j");
        let outer = b.do_loop(i, Expr::int(1), Expr::int(10), |b| {
            b.do_loop(j, Expr::int(1), Expr::int(10), |b| {
                b.assign_array(
                    a,
                    vec![Expr::scalar(i), Expr::scalar(j)],
                    Expr::real(0.0),
                );
            });
        });
        let p = b.finish();
        assert_eq!(p.body, vec![outer]);
        assert_eq!(p.preorder().len(), 3);
        assert!(p.validate().is_empty());
    }

    #[test]
    fn directives_round_trip() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let c = b.real_array("C", &[8]);
        let i = b.int_scalar("i");
        b.processors("P", &[4]);
        b.distribute(a, vec![DistFormat::Block]);
        b.align_identity(c, a);
        let lp = b.do_loop(i, Expr::int(1), Expr::int(8), |b| {
            b.assign_array(a, vec![Expr::scalar(i)], Expr::real(1.0));
        });
        b.independent(lp, vec![]);
        let p = b.finish();
        assert!(p.directives.grid.is_some());
        assert!(p.directives.distribute_of(a).is_some());
        assert_eq!(p.directives.align_of(c).unwrap().target, a);
        assert!(p.directives.independent_of(lp).unwrap().independent);
    }

    #[test]
    #[should_panic(expected = "DISTRIBUTE format count")]
    fn distribute_rank_mismatch_panics() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8, 8]);
        b.distribute(a, vec![DistFormat::Block]);
    }

    #[test]
    fn goto_and_labels() {
        let mut b = ProgramBuilder::new();
        let i = b.int_scalar("i");
        b.do_loop(i, Expr::int(1), Expr::int(3), |b| {
            b.goto(100);
            b.continue_label(100);
        });
        let p = b.finish();
        assert!(p.validate().is_empty());
    }
}
