//! Parser for the mini-HPF text DSL.
//!
//! The accepted language is the subset of Fortran-77/HPF exercised by the
//! paper: declarations, `DO`/`END DO`, block and logical `IF`, `GOTO`,
//! labelled `CONTINUE`, assignments, and the HPF directives `PROCESSORS`,
//! `DISTRIBUTE`, `ALIGN`, `INDEPENDENT [, NEW(...)]` plus a `NO_VALUE_DEPS`
//! extension directive. Keywords are case-insensitive; identifiers are
//! normalized to lower case (Fortran is case-insensitive).
//!
//! ```
//! let src = r#"
//! !HPF$ PROCESSORS P(4)
//! !HPF$ DISTRIBUTE (BLOCK) :: A
//! REAL A(16)
//! INTEGER i
//! DO i = 2, 15
//!   A(i) = A(i-1) + 1.0
//! END DO
//! "#;
//! let p = hpf_ir::parse_program(src).unwrap();
//! assert!(p.validate().is_empty());
//! ```

use crate::directives::{
    AlignDim, AlignDirective, DistFormat, DistributeDirective, ProcGridDecl,
};
use crate::expr::{ArrayRef, BinOp, Expr, Intrinsic, UnOp};
use crate::program::{Program, VarId};
use crate::stmt::{LValue, Label, Stmt, StmtId};
use crate::types::{ArrayShape, ScalarTy, VarInfo};

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Real(f64),
    Sym(&'static str),
    /// `.AND.` / `.OR.` / `.NOT.` / `.TRUE.` / `.FALSE.` / `.EQ.` ...
    Dot(String),
}

fn lex_line(line: &str, lineno: usize) -> Result<Vec<Tok>, ParseError> {
    let b = line.as_bytes();
    let mut i = 0;
    let mut toks = Vec::new();
    let err = |msg: String| ParseError { line: lineno, msg };
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '!' {
            break; // comment to end of line (directives handled earlier)
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_real = false;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                // Don't swallow `.AND.` after an integer: require a digit or
                // non-letter after the dot.
                if i + 1 >= b.len() || !(b[i + 1] as char).is_ascii_alphabetic() {
                    is_real = true;
                    i += 1;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            if i < b.len() && matches!(b[i] as char, 'e' | 'E' | 'd' | 'D') {
                let save = i;
                let mut j = i + 1;
                if j < b.len() && matches!(b[j] as char, '+' | '-') {
                    j += 1;
                }
                if j < b.len() && (b[j] as char).is_ascii_digit() {
                    is_real = true;
                    i = j;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                } else {
                    i = save;
                }
            }
            let s: String = line[start..i].replace(['d', 'D'], "e");
            if is_real {
                toks.push(Tok::Real(
                    s.parse::<f64>()
                        .map_err(|e| err(format!("bad real literal {}: {}", s, e)))?,
                ));
            } else {
                toks.push(Tok::Int(
                    s.parse::<i64>()
                        .map_err(|e| err(format!("bad int literal {}: {}", s, e)))?,
                ));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok::Ident(line[start..i].to_ascii_lowercase()));
            continue;
        }
        if c == '.' {
            // dotted keyword
            let start = i + 1;
            let mut j = start;
            while j < b.len() && (b[j] as char).is_ascii_alphabetic() {
                j += 1;
            }
            if j < b.len() && b[j] == b'.' {
                toks.push(Tok::Dot(line[start..j].to_ascii_uppercase()));
                i = j + 1;
                continue;
            }
            return Err(err(format!("stray '.' at column {}", i + 1)));
        }
        // multi-char symbols first
        let rest = &line[i..];
        let two: Option<&'static str> = ["::", "**", "==", "/=", "<=", ">="]
            .iter()
            .find(|s| rest.starts_with(**s))
            .copied();
        if let Some(s) = two {
            toks.push(Tok::Sym(s));
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            '=' => Some("="),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '<' => Some("<"),
            '>' => Some(">"),
            ':' => Some(":"),
            _ => None,
        };
        match one {
            Some(s) => {
                toks.push(Tok::Sym(s));
                i += 1;
            }
            None => return Err(err(format!("unexpected character '{}'", c))),
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

/// (alignee, dummies, target, target subscript token lists, line).
type DeferredAlign = (String, Vec<String>, String, Vec<Vec<Tok>>, usize);

struct Parser {
    program: Program,
    /// Pending INDEPENDENT info for the next DO statement.
    pending_independent: Option<(bool, Vec<String>, bool)>,
    /// Deferred align directives (alignee may be declared after the
    /// directive in HPF source order): (alignee, dummies, target, target
    /// subscript texts).
    deferred_aligns: Vec<DeferredAlign>,
    deferred_distributes: Vec<(Vec<DistFormat>, Vec<String>, usize)>,
}

struct LineParser<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected '{}', found {:?}", s, self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(x)) if x == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {:?}", other)),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            other => self.err(format!("expected integer, found {:?}", other)),
        }
    }

    /// An integer with an optional leading sign (array bound declarations).
    fn expect_signed_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_sym("-");
        if !neg {
            let _ = self.eat_sym("+");
        }
        let v = self.expect_int()?;
        Ok(if neg { -v } else { v })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            self.err(format!("trailing tokens: {:?}", &self.toks[self.pos..]))
        }
    }

    // Expression grammar (precedence climbing).
    fn expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        self.or_expr(vars)
    }

    fn or_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr(vars)?;
        while matches!(self.peek(), Some(Tok::Dot(d)) if d == "OR") {
            self.pos += 1;
            let rhs = self.and_expr(vars)?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr(vars)?;
        while matches!(self.peek(), Some(Tok::Dot(d)) if d == "AND") {
            self.pos += 1;
            let rhs = self.not_expr(vars)?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Tok::Dot(d)) if d == "NOT") {
            self.pos += 1;
            let e = self.not_expr(vars)?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.rel_expr(vars)
    }

    fn rel_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let lhs = self.add_expr(vars)?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(BinOp::Eq),
            Some(Tok::Sym("/=")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            Some(Tok::Dot(d)) => match d.as_str() {
                "EQ" => Some(BinOp::Eq),
                "NE" => Some(BinOp::Ne),
                "LT" => Some(BinOp::Lt),
                "LE" => Some(BinOp::Le),
                "GT" => Some(BinOp::Gt),
                "GE" => Some(BinOp::Ge),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr(vars)?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr(vars)?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.mul_expr(vars)?;
                lhs = lhs.add(rhs);
            } else if self.eat_sym("-") {
                let rhs = self.mul_expr(vars)?;
                lhs = lhs.sub(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr(vars)?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.unary_expr(vars)?;
                lhs = lhs.mul(rhs);
            } else if self.eat_sym("/") {
                let rhs = self.unary_expr(vars)?;
                lhs = lhs.div(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            let e = self.unary_expr(vars)?;
            return Ok(e.neg());
        }
        if self.eat_sym("+") {
            return self.unary_expr(vars);
        }
        self.pow_expr(vars)
    }

    fn pow_expr(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        let base = self.primary(vars)?;
        if self.eat_sym("**") {
            // right-associative
            let exp = self.unary_expr(vars)?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn primary(&mut self, vars: &Program) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::IntLit(v)),
            Some(Tok::Real(v)) => Ok(Expr::RealLit(v)),
            Some(Tok::Dot(d)) if d == "TRUE" => Ok(Expr::BoolLit(true)),
            Some(Tok::Dot(d)) if d == "FALSE" => Ok(Expr::BoolLit(false)),
            Some(Tok::Sym("(")) => {
                let e = self.expr(vars)?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::Sym("("))) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr(vars)?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    if let Some(v) = vars.vars.lookup(&name) {
                        if vars.vars.info(v).is_array() {
                            return Ok(Expr::Array(ArrayRef::new(v, args)));
                        }
                        return self.err(format!("scalar {} used with subscripts", name));
                    }
                    if let Some(i) = Intrinsic::from_name(&name) {
                        if args.len() != i.arity() {
                            return self.err(format!(
                                "{} takes {} argument(s), got {}",
                                i.name(),
                                i.arity(),
                                args.len()
                            ));
                        }
                        return Ok(Expr::Intrinsic(i, args));
                    }
                    self.err(format!("unknown array or intrinsic '{}'", name))
                } else {
                    match vars.vars.lookup(&name) {
                        Some(v) => Ok(Expr::Scalar(v)),
                        None => self.err(format!("undeclared variable '{}'", name)),
                    }
                }
            }
            other => self.err(format!("unexpected token {:?} in expression", other)),
        }
    }
}

impl Parser {
    fn new() -> Self {
        Parser {
            program: Program::new(),
            pending_independent: None,
            deferred_aligns: Vec::new(),
            deferred_distributes: Vec::new(),
        }
    }

    fn lookup(&self, name: &str, line: usize) -> Result<VarId, ParseError> {
        self.program.vars.lookup(name).ok_or_else(|| ParseError {
            line,
            msg: format!("undeclared variable '{}'", name),
        })
    }

    fn parse_directive(&mut self, text: &str, lineno: usize) -> Result<(), ParseError> {
        let toks = lex_line(text, lineno)?;
        let mut lp = LineParser {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        if lp.eat_kw("processors") {
            let name = lp.expect_ident()?;
            lp.expect_sym("(")?;
            let mut dims = Vec::new();
            loop {
                dims.push(lp.expect_int()? as usize);
                if lp.eat_sym(")") {
                    break;
                }
                lp.expect_sym(",")?;
            }
            self.program.directives.grid = Some(ProcGridDecl::new(name, dims));
            return lp.expect_end();
        }
        if lp.eat_kw("distribute") {
            lp.expect_sym("(")?;
            let mut fmts = Vec::new();
            loop {
                if lp.eat_sym("*") {
                    fmts.push(DistFormat::Collapsed);
                } else if lp.eat_kw("block") {
                    fmts.push(DistFormat::Block);
                } else if lp.eat_kw("cyclic") {
                    if lp.eat_sym("(") {
                        let k = lp.expect_int()? as usize;
                        lp.expect_sym(")")?;
                        fmts.push(DistFormat::BlockCyclic(k));
                    } else {
                        fmts.push(DistFormat::Cyclic);
                    }
                } else {
                    return lp.err("expected BLOCK, CYCLIC or *");
                }
                if lp.eat_sym(")") {
                    break;
                }
                lp.expect_sym(",")?;
            }
            // optional ONTO grid
            if lp.eat_kw("onto") {
                let _ = lp.expect_ident()?;
            }
            lp.expect_sym("::")?;
            let mut names = Vec::new();
            loop {
                names.push(lp.expect_ident()?);
                if lp.at_end() {
                    break;
                }
                lp.expect_sym(",")?;
            }
            self.deferred_distributes.push((fmts, names, lineno));
            return Ok(());
        }
        if lp.eat_kw("align") {
            // Two forms:
            //   ALIGN B(i)     WITH A(i,*)
            //   ALIGN (i)      WITH A(i) :: B, C      (alignee list)
            let mut alignees: Vec<String> = Vec::new();
            let mut dummies: Vec<String> = Vec::new();
            if matches!(lp.peek(), Some(Tok::Sym("("))) {
                lp.pos += 1;
                loop {
                    if lp.eat_sym(":") {
                        dummies.push(format!("_colon{}", dummies.len()));
                    } else {
                        dummies.push(lp.expect_ident()?);
                    }
                    if lp.eat_sym(")") {
                        break;
                    }
                    lp.expect_sym(",")?;
                }
            } else {
                let a = lp.expect_ident()?;
                alignees.push(a);
                if lp.eat_sym("(") {
                    loop {
                        if lp.eat_sym(":") {
                            // `ALIGN B(:) WITH A(:)` — positional colon form.
                            dummies.push(format!("_colon{}", dummies.len()));
                        } else {
                            dummies.push(lp.expect_ident()?);
                        }
                        if lp.eat_sym(")") {
                            break;
                        }
                        lp.expect_sym(",")?;
                    }
                }
            }
            if !lp.eat_kw("with") {
                return lp.err("expected WITH in ALIGN");
            }
            let target = lp.expect_ident()?;
            lp.expect_sym("(")?;
            // Collect target subscript token groups (resolved at finish).
            let mut groups: Vec<Vec<Tok>> = vec![Vec::new()];
            let mut depth = 0usize;
            loop {
                match lp.next() {
                    None => return lp.err("unterminated ALIGN target"),
                    Some(Tok::Sym("(")) => {
                        depth += 1;
                        groups.last_mut().unwrap().push(Tok::Sym("("));
                    }
                    Some(Tok::Sym(")")) => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                        groups.last_mut().unwrap().push(Tok::Sym(")"));
                    }
                    Some(Tok::Sym(",")) if depth == 0 => groups.push(Vec::new()),
                    Some(t) => groups.last_mut().unwrap().push(t),
                }
            }
            if lp.eat_sym("::") {
                loop {
                    alignees.push(lp.expect_ident()?);
                    if lp.at_end() {
                        break;
                    }
                    lp.expect_sym(",")?;
                }
            }
            if alignees.is_empty() {
                return lp.err("ALIGN with no alignee");
            }
            for a in alignees {
                self.deferred_aligns.push((
                    a,
                    dummies.clone(),
                    target.clone(),
                    groups.clone(),
                    lineno,
                ));
            }
            return lp.expect_end();
        }
        if lp.eat_kw("independent") || lp.eat_kw("no_value_deps") {
            unreachable!("INDEPENDENT/NO_VALUE_DEPS are routed through markers");
        }
        lp.err("unknown HPF directive")
    }

    /// Parse a deferred `INDEPENDENT` / `NO_VALUE_DEPS` marker.
    fn parse_directive_toks(&mut self, toks: &[Tok], lineno: usize) -> Result<(), ParseError> {
        let mut lp = LineParser {
            toks,
            pos: 0,
            line: lineno,
        };
        if lp.eat_kw("independent") {
            let mut new_vars = Vec::new();
            if lp.eat_sym(",") {
                if !lp.eat_kw("new") {
                    return lp.err("expected NEW after INDEPENDENT,");
                }
                lp.expect_sym("(")?;
                loop {
                    new_vars.push(lp.expect_ident()?);
                    if lp.eat_sym(")") {
                        break;
                    }
                    lp.expect_sym(",")?;
                }
            }
            let entry = self
                .pending_independent
                .get_or_insert((false, Vec::new(), false));
            entry.0 = true;
            entry.1.extend(new_vars);
            return lp.expect_end();
        }
        if lp.eat_kw("no_value_deps") {
            let entry = self
                .pending_independent
                .get_or_insert((false, Vec::new(), false));
            entry.2 = true;
            return lp.expect_end();
        }
        lp.err("unknown HPF directive")
    }

    fn parse_decl(
        &mut self,
        ty: ScalarTy,
        lp: &mut LineParser<'_>,
    ) -> Result<(), ParseError> {
        loop {
            let name = lp.expect_ident()?;
            if lp.eat_sym("(") {
                let mut dims = Vec::new();
                loop {
                    let first = lp.expect_signed_int()?;
                    if lp.eat_sym(":") {
                        let hi = lp.expect_signed_int()?;
                        dims.push((first, hi));
                    } else {
                        dims.push((1, first));
                    }
                    if lp.eat_sym(")") {
                        break;
                    }
                    lp.expect_sym(",")?;
                }
                self.program
                    .vars
                    .declare(VarInfo::array(name, ty, ArrayShape { dims }));
            } else {
                self.program.vars.declare(VarInfo::scalar(name, ty));
            }
            if lp.at_end() {
                return Ok(());
            }
            lp.expect_sym(",")?;
        }
    }

    /// Parse statements until one of the given terminators is reached (at
    /// statement level). Returns (statements, terminator keyword seen).
    fn parse_block(
        &mut self,
        lines: &[(usize, Vec<Tok>)],
        idx: &mut usize,
        terminators: &[&str],
    ) -> Result<(Vec<StmtId>, Option<String>), ParseError> {
        let mut stmts = Vec::new();
        while *idx < lines.len() {
            let (lineno, toks) = &lines[*idx];
            // Deferred INDEPENDENT / NO_VALUE_DEPS directive marker.
            if matches!(toks.first(), Some(Tok::Ident(w)) if w == "__hpf_directive__") {
                self.parse_directive_toks(&toks[1..], *lineno)?;
                *idx += 1;
                continue;
            }
            let mut lp = LineParser {
                toks,
                pos: 0,
                line: *lineno,
            };
            // Optional numeric label.
            let label = if let Some(Tok::Int(v)) = lp.peek() {
                let v = *v;
                // A label must be followed by a statement keyword/ident.
                if toks.len() > 1 {
                    lp.pos += 1;
                    Some(Label(v as u32))
                } else {
                    None
                }
            } else {
                None
            };
            // Terminator check (END DO / END IF / ELSE).
            if let Some(Tok::Ident(w)) = lp.peek() {
                let w2 = if w == "end" {
                    let nxt = match lp.toks.get(lp.pos + 1) {
                        Some(Tok::Ident(x)) => format!("end {}", x),
                        _ => "end".to_string(),
                    };
                    nxt
                } else {
                    w.clone()
                };
                if terminators.contains(&w2.as_str()) {
                    *idx += 1;
                    return Ok((stmts, Some(w2)));
                }
            }
            *idx += 1;
            let sid = self.parse_stmt(&mut lp, lines, idx)?;
            if let Some(l) = label {
                self.program.set_label(sid, l);
            }
            stmts.push(sid);
        }
        Ok((stmts, None))
    }

    fn parse_stmt(
        &mut self,
        lp: &mut LineParser<'_>,
        lines: &[(usize, Vec<Tok>)],
        idx: &mut usize,
    ) -> Result<StmtId, ParseError> {
        let line = lp.line;
        // DO statement
        if matches!(lp.peek(), Some(Tok::Ident(w)) if w == "do") {
            lp.pos += 1;
            let var_name = lp.expect_ident()?;
            let var = self.lookup(&var_name, line)?;
            lp.expect_sym("=")?;
            let lo = lp.expr(&self.program)?;
            lp.expect_sym(",")?;
            let hi = lp.expr(&self.program)?;
            let step = if lp.eat_sym(",") {
                lp.expr(&self.program)?
            } else {
                Expr::int(1)
            };
            lp.expect_end()?;
            let pend = self.pending_independent.take();
            let (body, term) = self.parse_block(lines, idx, &["end do"])?;
            if term.as_deref() != Some("end do") {
                return Err(ParseError {
                    line,
                    msg: "DO without END DO".into(),
                });
            }
            let sid = self.program.add_stmt(Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
            });
            if let Some((indep, news, nvd)) = pend {
                let mut new_ids = Vec::new();
                for n in news {
                    new_ids.push(self.lookup(&n, line)?);
                }
                let info = self
                    .program
                    .directives
                    .independents
                    .entry(sid)
                    .or_default();
                info.independent = indep;
                info.new_vars = new_ids;
                info.no_value_deps = nvd;
            }
            return Ok(sid);
        }
        // IF statement
        if matches!(lp.peek(), Some(Tok::Ident(w)) if w == "if") {
            lp.pos += 1;
            lp.expect_sym("(")?;
            let cond = lp.expr(&self.program)?;
            lp.expect_sym(")")?;
            if lp.eat_kw("then") {
                lp.expect_end()?;
                let (then_body, term) = self.parse_block(lines, idx, &["else", "end if"])?;
                let (else_body, term2) = if term.as_deref() == Some("else") {
                    let (eb, t2) = self.parse_block(lines, idx, &["end if"])?;
                    (eb, t2)
                } else {
                    (Vec::new(), term)
                };
                if term2.as_deref() != Some("end if") {
                    return Err(ParseError {
                        line,
                        msg: "IF without END IF".into(),
                    });
                }
                return Ok(self.program.add_stmt(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                }));
            }
            // Logical IF: single statement on the same line.
            let inner = self.parse_simple_stmt(lp)?;
            return Ok(self.program.add_stmt(Stmt::If {
                cond,
                then_body: vec![inner],
                else_body: vec![],
            }));
        }
        let sid = self.parse_simple_stmt(lp)?;
        Ok(sid)
    }

    /// GOTO / CONTINUE / assignment (no block structure).
    fn parse_simple_stmt(&mut self, lp: &mut LineParser<'_>) -> Result<StmtId, ParseError> {
        let line = lp.line;
        if matches!(lp.peek(), Some(Tok::Ident(w)) if w == "goto") {
            lp.pos += 1;
            let l = lp.expect_int()?;
            lp.expect_end()?;
            return Ok(self.program.add_stmt(Stmt::Goto(Label(l as u32))));
        }
        if matches!(lp.peek(), Some(Tok::Ident(w)) if w == "go") {
            lp.pos += 1;
            if !lp.eat_kw("to") {
                return lp.err("expected TO after GO");
            }
            let l = lp.expect_int()?;
            lp.expect_end()?;
            return Ok(self.program.add_stmt(Stmt::Goto(Label(l as u32))));
        }
        if matches!(lp.peek(), Some(Tok::Ident(w)) if w == "continue") {
            lp.pos += 1;
            lp.expect_end()?;
            return Ok(self.program.add_stmt(Stmt::Continue));
        }
        // Assignment.
        let name = lp.expect_ident()?;
        let var = self.lookup(&name, line)?;
        let lhs = if lp.eat_sym("(") {
            let mut subs = Vec::new();
            loop {
                subs.push(lp.expr(&self.program)?);
                if lp.eat_sym(")") {
                    break;
                }
                lp.expect_sym(",")?;
            }
            LValue::Array(ArrayRef::new(var, subs))
        } else {
            LValue::Scalar(var)
        };
        lp.expect_sym("=")?;
        let rhs = lp.expr(&self.program)?;
        lp.expect_end()?;
        Ok(self.program.add_stmt(Stmt::Assign { lhs, rhs }))
    }

    fn finish(mut self) -> Result<Program, ParseError> {
        // Resolve deferred DISTRIBUTE directives.
        for (fmts, names, line) in std::mem::take(&mut self.deferred_distributes) {
            for name in names {
                let v = self.lookup(&name, line)?;
                let rank = self.program.vars.info(v).rank();
                if rank != fmts.len() {
                    return Err(ParseError {
                        line,
                        msg: format!(
                            "DISTRIBUTE rank mismatch for {}: {} formats vs rank {}",
                            name,
                            fmts.len(),
                            rank
                        ),
                    });
                }
                self.program.directives.distributes.push(DistributeDirective {
                    array: v,
                    formats: fmts.clone(),
                });
            }
        }
        // Resolve deferred ALIGN directives.
        for (alignee, dummies, target, groups, line) in std::mem::take(&mut self.deferred_aligns)
        {
            let alignee_id = self.lookup(&alignee, line)?;
            let target_id = self.lookup(&target, line)?;
            let mut dims = Vec::with_capacity(groups.len());
            for (gi, g) in groups.iter().enumerate() {
                dims.push(parse_align_dim(g, gi, &dummies, line)?);
            }
            self.program.directives.aligns.push(AlignDirective {
                alignee: alignee_id,
                target: target_id,
                dims,
            });
        }
        self.program.rebuild_topology();
        let errs = self.program.validate();
        if let Some(e) = errs.first() {
            return Err(ParseError {
                line: 0,
                msg: e.clone(),
            });
        }
        Ok(self.program)
    }
}

/// Parse one ALIGN target subscript group: `*`, a constant, `dummy`,
/// `k*dummy + c`, `:` (positional match).
fn parse_align_dim(
    toks: &[Tok],
    group_index: usize,
    dummies: &[String],
    line: usize,
) -> Result<AlignDim, ParseError> {
    let err = |msg: String| ParseError { line, msg };
    if toks.len() == 1 {
        match &toks[0] {
            Tok::Sym("*") => return Ok(AlignDim::Replicate),
            Tok::Int(c) => return Ok(AlignDim::Const(*c)),
            Tok::Sym(":") => {
                // Positional colon: match the alignee dimension at the same
                // position.
                return Ok(AlignDim::Match {
                    alignee_dim: group_index,
                    stride: 1,
                    offset: 0,
                });
            }
            Tok::Ident(d) => {
                if let Some(pos) = dummies.iter().position(|x| x == d) {
                    return Ok(AlignDim::Match {
                        alignee_dim: pos,
                        stride: 1,
                        offset: 0,
                    });
                }
                return Err(err(format!("unknown align dummy '{}'", d)));
            }
            _ => {}
        }
    }
    // General linear form: [k *] dummy [± c]
    let mut stride = 1i64;
    let mut offset = 0i64;
    let dummy: Option<usize>;
    let mut i = 0;
    if let (Some(Tok::Int(k)), Some(Tok::Sym("*"))) = (toks.first(), toks.get(1)) {
        stride = *k;
        i = 2;
    }
    match toks.get(i) {
        Some(Tok::Ident(d)) => {
            dummy = dummies.iter().position(|x| x == d);
            if dummy.is_none() {
                return Err(err(format!("unknown align dummy '{}'", d)));
            }
            i += 1;
        }
        _ => return Err(err("expected align dummy".into())),
    }
    if let Some(Tok::Sym(s)) = toks.get(i) {
        let sign = match *s {
            "+" => 1,
            "-" => -1,
            _ => return Err(err("expected + or - in align subscript".into())),
        };
        match toks.get(i + 1) {
            Some(Tok::Int(c)) => offset = sign * c,
            _ => return Err(err("expected constant after +/- in align".into())),
        }
        i += 2;
    }
    if i != toks.len() {
        return Err(err("trailing tokens in align subscript".into()));
    }
    Ok(AlignDim::Match {
        alignee_dim: dummy.unwrap(),
        stride,
        offset,
    })
}

/// Parse a mini-HPF source text into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new();
    // Phase 1: split into logical lines; route directives and declarations.
    let mut stmt_lines: Vec<(usize, Vec<Tok>)> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper
            .strip_prefix("!HPF$")
            .or_else(|| upper.strip_prefix("CHPF$"))
        {
            // INDEPENDENT and NO_VALUE_DEPS attach to the *next* DO in
            // source order: route them through a marker line so they are
            // applied during statement parsing, not in this pre-pass.
            let trimmed = rest.trim_start().to_ascii_uppercase();
            if trimmed.starts_with("INDEPENDENT") || trimmed.starts_with("NO_VALUE_DEPS") {
                let mut toks = vec![Tok::Ident("__hpf_directive__".into())];
                toks.extend(lex_line(rest, lineno)?);
                stmt_lines.push((lineno, toks));
            } else {
                parser.parse_directive(rest, lineno)?;
            }
            continue;
        }
        if line.starts_with('!') {
            continue; // comment
        }
        let toks = lex_line(line, lineno)?;
        if toks.is_empty() {
            continue;
        }
        // Declaration?
        if let Some(Tok::Ident(w)) = toks.first() {
            let ty = match w.as_str() {
                "integer" => Some(ScalarTy::Int),
                "real" | "double" => Some(ScalarTy::Real),
                "logical" => Some(ScalarTy::Bool),
                _ => None,
            };
            if let Some(ty) = ty {
                let mut lp = LineParser {
                    toks: &toks,
                    pos: 1,
                    line: lineno,
                };
                // `DOUBLE PRECISION`
                if *w == *"double" && !lp.eat_kw("precision") {
                    return Err(ParseError {
                        line: lineno,
                        msg: "expected PRECISION after DOUBLE".into(),
                    });
                }
                parser.parse_decl(ty, &mut lp)?;
                continue;
            }
        }
        stmt_lines.push((lineno, toks));
    }
    // Phase 2: parse statements.
    let mut idx = 0;
    let (body, term) = parser.parse_block(&stmt_lines, &mut idx, &[])?;
    if let Some(t) = term {
        return Err(ParseError {
            line: 0,
            msg: format!("unexpected '{}'", t),
        });
    }
    parser.program.body = body;
    parser.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, Value};

    #[test]
    fn parse_figure1_style_program() {
        // The paper's Figure 1 example.
        let src = r#"
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(20), B(20), C(20), D(20), E(20), F(20)
INTEGER i, m
REAL x, y, z
m = 2
DO i = 2, 19
  m = m + 1
  x = B(i) + C(i)
  y = A(i) + B(i)
  z = E(i) + F(i)
  A(i+1) = y / z
  D(m) = x / z
END DO
"#;
        let p = parse_program(src).unwrap();
        assert!(p.validate().is_empty());
        assert_eq!(p.directives.aligns.len(), 5);
        let a = p.vars.lookup("a").unwrap();
        assert!(p.directives.distribute_of(a).is_some());
        let e = p.vars.lookup("e").unwrap();
        let al = p.directives.align_of(e).unwrap();
        assert_eq!(al.dims, vec![AlignDim::Replicate]);
    }

    #[test]
    fn parse_and_run() {
        let src = r#"
REAL A(8)
INTEGER i
DO i = 2, 8
  A(i) = A(i-1) + 1.0
END DO
"#;
        let p = parse_program(src).unwrap();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        let a = p.vars.lookup("a").unwrap();
        assert_eq!(mem.real_slice(a), &[0., 1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn parse_independent_new() {
        let src = r#"
!HPF$ DISTRIBUTE (*, BLOCK) :: R
REAL C(4,4), R(4,4)
INTEGER i, k
!HPF$ INDEPENDENT, NEW(c)
DO k = 1, 4
  DO i = 1, 4
    C(i,1) = 1.0
    R(i,k) = C(i,1)
  END DO
END DO
"#;
        let p = parse_program(src).unwrap();
        let c = p.vars.lookup("c").unwrap();
        // The INDEPENDENT is attached to the k loop.
        let kloop = p
            .preorder()
            .into_iter()
            .find(|&s| p.stmt(s).is_loop() && p.nesting_level(s) == 0)
            .unwrap();
        let info = p.directives.independent_of(kloop).unwrap();
        assert!(info.independent);
        assert_eq!(info.new_vars, vec![c]);
    }

    #[test]
    fn parse_if_goto_continue() {
        let src = r#"
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(8), B(8), C(8)
INTEGER i
DO i = 1, 8
  IF (B(i) /= 0.0) THEN
    A(i) = A(i) / B(i)
    IF (B(i) < 0.0) GOTO 100
  ELSE
    A(i) = C(i)
    C(i) = C(i) * C(i)
  END IF
100 CONTINUE
END DO
"#;
        let p = parse_program(src).unwrap();
        assert!(p.validate().is_empty());
        // Both IFs present: one block IF, one logical IF.
        let n_ifs = p
            .preorder()
            .into_iter()
            .filter(|&s| matches!(p.stmt(s), Stmt::If { .. }))
            .count();
        assert_eq!(n_ifs, 2);
        // Runs without error.
        let (_, _) = run_program(&p, |m| {
            let b = p.vars.lookup("b").unwrap();
            m.fill_real(b, &[1., -1., 0., 2., 0., 3., -2., 0.]);
        })
        .unwrap();
    }

    #[test]
    fn parse_cyclic_and_2d() {
        let src = r#"
!HPF$ PROCESSORS P(2,2)
!HPF$ DISTRIBUTE (*, CYCLIC) :: A
!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: H
REAL A(8,8), H(8,8)
"#;
        let p = parse_program(src).unwrap();
        let a = p.vars.lookup("a").unwrap();
        let d = p.directives.distribute_of(a).unwrap();
        assert_eq!(d.formats, vec![DistFormat::Collapsed, DistFormat::Cyclic]);
        assert_eq!(p.directives.grid.as_ref().unwrap().dims, vec![2, 2]);
    }

    #[test]
    fn parse_real_literals() {
        let src = r#"
REAL x, y
x = 1.5e2
y = 2.5d0
"#;
        let p = parse_program(src).unwrap();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(p.vars.lookup("x").unwrap()), Value::Real(150.0));
        assert_eq!(mem.scalar(p.vars.lookup("y").unwrap()), Value::Real(2.5));
    }

    #[test]
    fn parse_dotted_relops() {
        let src = r#"
INTEGER i
LOGICAL q
i = 3
q = i .GE. 2 .AND. .NOT. (i .EQ. 5)
"#;
        let p = parse_program(src).unwrap();
        let (mem, _) = run_program(&p, |_| {}).unwrap();
        assert_eq!(mem.scalar(p.vars.lookup("q").unwrap()), Value::Bool(true));
    }

    #[test]
    fn error_on_undeclared() {
        let src = "x = 1.0\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.msg.contains("undeclared"));
    }

    #[test]
    fn error_on_unbalanced_do() {
        let src = "INTEGER i\nDO i = 1, 3\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.msg.contains("END DO"), "{}", e);
    }

    #[test]
    fn pretty_print_parses_back() {
        let src = r#"
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE (BLOCK) :: A
REAL A(16), B(16)
INTEGER i
REAL s
s = 0.0
DO i = 1, 16
  s = s + A(i) * B(i)
END DO
"#;
        let p1 = parse_program(src).unwrap();
        let text = crate::pretty::print_program(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.vars.len(), p2.vars.len());
        assert_eq!(p1.num_stmts(), p2.num_stmts());
        // Same sequential semantics.
        let a = p1.vars.lookup("a").unwrap();
        let b = p1.vars.lookup("b").unwrap();
        let data: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let (m1, _) = run_program(&p1, |m| {
            m.fill_real(a, &data);
            m.fill_real(b, &data);
        })
        .unwrap();
        let (m2, _) = run_program(&p2, |m| {
            m.fill_real(p2.vars.lookup("a").unwrap(), &data);
            m.fill_real(p2.vars.lookup("b").unwrap(), &data);
        })
        .unwrap();
        let s1 = p1.vars.lookup("s").unwrap();
        let s2 = p2.vars.lookup("s").unwrap();
        assert_eq!(m1.scalar(s1), m2.scalar(s2));
    }
}
