//! Pretty-printer: renders a [`Program`] back to the mini-HPF text DSL
//! accepted by [`crate::parse`].

use crate::directives::{AlignDim, DistFormat};
use crate::expr::{BinOp, Expr, UnOp};
use crate::program::Program;
use crate::stmt::{LValue, Stmt, StmtId};
use crate::types::VarKind;
use std::fmt::Write;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    // Directives first.
    if let Some(g) = &p.directives.grid {
        let dims: Vec<String> = g.dims.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "!HPF$ PROCESSORS {}({})", g.name, dims.join(","));
    }
    for d in &p.directives.distributes {
        let fmts: Vec<String> = d
            .formats
            .iter()
            .map(|f| match f {
                DistFormat::Block => "BLOCK".to_string(),
                DistFormat::Cyclic => "CYCLIC".to_string(),
                DistFormat::BlockCyclic(k) => format!("CYCLIC({})", k),
                DistFormat::Collapsed => "*".to_string(),
            })
            .collect();
        let _ = writeln!(
            out,
            "!HPF$ DISTRIBUTE ({}) :: {}",
            fmts.join(","),
            p.vars.name(d.array)
        );
    }
    for a in &p.directives.aligns {
        let alignee_rank = p.vars.info(a.alignee).rank().max(1);
        let src: Vec<String> = (0..alignee_rank).map(dummy_index_name).collect();
        let tgt: Vec<String> = a
            .dims
            .iter()
            .map(|d| match d {
                AlignDim::Match {
                    alignee_dim,
                    stride,
                    offset,
                } => {
                    let base = dummy_index_name(*alignee_dim);
                    let mut s = if *stride == 1 {
                        base
                    } else {
                        format!("{}*{}", stride, base)
                    };
                    if *offset > 0 {
                        s = format!("{}+{}", s, offset);
                    } else if *offset < 0 {
                        s = format!("{}{}", s, offset);
                    }
                    s
                }
                AlignDim::Replicate => "*".to_string(),
                AlignDim::Const(c) => c.to_string(),
            })
            .collect();
        let _ = writeln!(
            out,
            "!HPF$ ALIGN {}({}) WITH {}({})",
            p.vars.name(a.alignee),
            src.join(","),
            p.vars.name(a.target),
            tgt.join(",")
        );
    }
    // Declarations.
    for (_, v) in p.vars.iter() {
        match &v.kind {
            VarKind::Scalar => {
                let _ = writeln!(out, "{} {}", v.ty.name(), v.name);
            }
            VarKind::Array(shape) => {
                let dims: Vec<String> = shape
                    .dims
                    .iter()
                    .map(|&(lo, hi)| {
                        if lo == 1 {
                            hi.to_string()
                        } else {
                            format!("{}:{}", lo, hi)
                        }
                    })
                    .collect();
                let _ = writeln!(out, "{} {}({})", v.ty.name(), v.name, dims.join(","));
            }
        }
    }
    for &s in &p.body {
        print_stmt(p, s, 0, &mut out);
    }
    out
}

fn dummy_index_name(d: usize) -> String {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    if d < NAMES.len() {
        format!("_{}", NAMES[d])
    } else {
        format!("_d{}", d)
    }
}

/// Render one statement subtree at the given indent.
pub fn print_stmt(p: &Program, id: StmtId, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let node = p.node(id);
    let label = node
        .label
        .map(|l| format!("{} ", l.0))
        .unwrap_or_default();
    // INDEPENDENT directive on loops is printed above the loop.
    if let Some(info) = p.directives.independent_of(id) {
        if info.independent {
            let news: Vec<&str> = info.new_vars.iter().map(|&v| p.vars.name(v)).collect();
            if news.is_empty() {
                let _ = writeln!(out, "{}!HPF$ INDEPENDENT", pad);
            } else {
                let _ = writeln!(out, "{}!HPF$ INDEPENDENT, NEW({})", pad, news.join(","));
            }
        }
        if info.no_value_deps {
            let _ = writeln!(out, "{}!HPF$ NO_VALUE_DEPS", pad);
        }
    }
    match &node.stmt {
        Stmt::Assign { lhs, rhs } => {
            let l = match lhs {
                LValue::Scalar(v) => p.vars.name(*v).to_string(),
                LValue::Array(r) => format!(
                    "{}({})",
                    p.vars.name(r.array),
                    r.subs
                        .iter()
                        .map(|s| print_expr(p, s))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            };
            let _ = writeln!(out, "{}{}{} = {}", pad, label, l, print_expr(p, rhs));
        }
        Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let step_s = if step.as_int() == Some(1) {
                String::new()
            } else {
                format!(", {}", print_expr(p, step))
            };
            let _ = writeln!(
                out,
                "{}{}DO {} = {}, {}{}",
                pad,
                label,
                p.vars.name(*var),
                print_expr(p, lo),
                print_expr(p, hi),
                step_s
            );
            for &s in body {
                print_stmt(p, s, indent + 1, out);
            }
            let _ = writeln!(out, "{}END DO", pad);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{}{}IF ({}) THEN", pad, label, print_expr(p, cond));
            for &s in then_body {
                print_stmt(p, s, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{}ELSE", pad);
                for &s in else_body {
                    print_stmt(p, s, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{}END IF", pad);
        }
        Stmt::Goto(l) => {
            let _ = writeln!(out, "{}{}GOTO {}", pad, label, l.0);
        }
        Stmt::Continue => {
            let _ = writeln!(out, "{}{}CONTINUE", pad, label);
        }
    }
}

/// Render an expression.
pub fn print_expr(p: &Program, e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::RealLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{:.1}", v)
            } else {
                format!("{}", v)
            }
        }
        Expr::BoolLit(b) => if *b { ".TRUE." } else { ".FALSE." }.to_string(),
        Expr::Scalar(v) => p.vars.name(*v).to_string(),
        Expr::Array(r) => format!(
            "{}({})",
            p.vars.name(r.array),
            r.subs
                .iter()
                .map(|s| print_expr(p, s))
                .collect::<Vec<_>>()
                .join(",")
        ),
        Expr::Unary(UnOp::Neg, x) => format!("(-{})", print_expr(p, x)),
        Expr::Unary(UnOp::Not, x) => format!(".NOT. {}", print_expr(p, x)),
        Expr::Binary(op, a, b) => {
            let mut sa = print_expr(p, a);
            let mut sb = print_expr(p, b);
            if needs_parens(a, *op) {
                sa = format!("({})", sa);
            }
            // Parenthesize the right child at equal precedence too, so that
            // `a - (b - c)` round-trips.
            if needs_parens(b, *op) || matches!(&**b, Expr::Binary(c, ..) if prec(*c) == prec(*op))
            {
                sb = format!("({})", sb);
            }
            let s = format!("{} {} {}", sa, op.symbol(), sb);
            if op.is_comparison() || op.is_logical() {
                format!("({})", s)
            } else {
                s
            }
        }
        Expr::Intrinsic(i, args) => format!(
            "{}({})",
            i.name(),
            args.iter()
                .map(|a| print_expr(p, a))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

fn needs_parens(child: &Expr, parent_op: BinOp) -> bool {
    match child {
        Expr::Binary(c, ..) => prec(*c) < prec(parent_op),
        _ => false,
    }
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Pow => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::directives::DistFormat;

    #[test]
    fn prints_loop_nest() {
        let mut b = ProgramBuilder::new();
        let a = b.real_array("A", &[8]);
        let i = b.int_scalar("i");
        b.processors("P", &[4]);
        b.distribute(a, vec![DistFormat::Block]);
        let lp = b.do_loop(i, Expr::int(2), Expr::int(7), |b| {
            b.assign_array(
                a,
                vec![Expr::scalar(i)],
                Expr::array(a, vec![Expr::scalar(i).sub(Expr::int(1))]).add(Expr::real(1.0)),
            );
        });
        b.independent(lp, vec![]);
        let p = b.finish();
        let s = print_program(&p);
        assert!(s.contains("!HPF$ PROCESSORS P(4)"));
        assert!(s.contains("!HPF$ DISTRIBUTE (BLOCK) :: A"));
        assert!(s.contains("!HPF$ INDEPENDENT"));
        assert!(s.contains("DO i = 2, 7"));
        assert!(s.contains("A(i) = A(i - 1) + 1.0"));
        assert!(s.contains("END DO"));
    }

    #[test]
    fn parenthesization() {
        let mut b = ProgramBuilder::new();
        let x = b.real_scalar("x");
        let y = b.real_scalar("y");
        // x = (x + y) * x
        b.assign_scalar(x, Expr::scalar(x).add(Expr::scalar(y)).mul(Expr::scalar(x)));
        let p = b.finish();
        let s = print_program(&p);
        assert!(s.contains("x = (x + y) * x"), "got: {}", s);
    }
}
