//! Statements: assignments, `DO` loops, `IF`, `GOTO`, labelled `CONTINUE`.

use crate::expr::{ArrayRef, Expr};
use crate::program::VarId;
use serde::{Deserialize, Serialize};

/// Index of a statement in the [`crate::Program`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StmtId(pub u32);

impl StmtId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A Fortran numeric statement label (target of `GOTO`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

/// Left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    Scalar(VarId),
    Array(ArrayRef),
}

impl LValue {
    pub fn var(&self) -> VarId {
        match self {
            LValue::Scalar(v) => *v,
            LValue::Array(r) => r.array,
        }
    }

    pub fn as_array(&self) -> Option<&ArrayRef> {
        match self {
            LValue::Array(r) => Some(r),
            LValue::Scalar(_) => None,
        }
    }

    pub fn is_scalar(&self) -> bool {
        matches!(self, LValue::Scalar(_))
    }
}

/// Statement kinds. Block-structured statements hold the [`StmtId`]s of
/// their children; the arena in [`crate::Program`] owns all nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `lhs = rhs`
    Assign { lhs: LValue, rhs: Expr },
    /// `DO var = lo, hi, step ... END DO`
    Do {
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: Expr,
        body: Vec<StmtId>,
    },
    /// `IF (cond) THEN ... ELSE ... END IF`
    If {
        cond: Expr,
        then_body: Vec<StmtId>,
        else_body: Vec<StmtId>,
    },
    /// `GOTO label`
    Goto(Label),
    /// A labelled `CONTINUE` (no-op jump target).
    Continue,
}

impl Stmt {
    pub fn is_assign(&self) -> bool {
        matches!(self, Stmt::Assign { .. })
    }

    pub fn is_loop(&self) -> bool {
        matches!(self, Stmt::Do { .. })
    }

    pub fn is_control(&self) -> bool {
        matches!(self, Stmt::If { .. } | Stmt::Goto(_))
    }

    /// Child statement blocks, in order.
    pub fn blocks(&self) -> Vec<&[StmtId]> {
        match self {
            Stmt::Do { body, .. } => vec![body],
            Stmt::If {
                then_body,
                else_body,
                ..
            } => vec![then_body, else_body],
            _ => vec![],
        }
    }

    /// All expressions read by this statement, in evaluation order:
    /// the RHS (and LHS subscripts) of an assignment, loop bounds, or the
    /// condition of an `IF`.
    pub fn read_exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Assign { lhs, rhs } => {
                let mut v = vec![rhs];
                if let LValue::Array(r) = lhs {
                    v.extend(r.subs.iter());
                }
                v
            }
            Stmt::Do { lo, hi, step, .. } => vec![lo, hi, step],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::Goto(_) | Stmt::Continue => vec![],
        }
    }

    /// The variable written by this statement, if it is an assignment.
    pub fn written_var(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { lhs, .. } => Some(lhs.var()),
            // The loop variable is written by the DO statement itself.
            Stmt::Do { var, .. } => Some(*var),
            _ => None,
        }
    }
}

/// An arena node: a statement plus its optional label and its parent link
/// (filled in by [`crate::Program::rebuild_topology`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StmtNode {
    pub stmt: Stmt,
    pub label: Option<Label>,
    /// Parent statement, `None` for top-level statements.
    pub parent: Option<StmtId>,
}

impl StmtNode {
    pub fn new(stmt: Stmt) -> Self {
        StmtNode {
            stmt,
            label: None,
            parent: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_var_extraction() {
        let s = LValue::Scalar(VarId(3));
        assert_eq!(s.var(), VarId(3));
        assert!(s.is_scalar());
        let a = LValue::Array(ArrayRef::new(VarId(7), vec![Expr::int(1)]));
        assert_eq!(a.var(), VarId(7));
        assert!(a.as_array().is_some());
    }

    #[test]
    fn read_exprs_of_assign_include_lhs_subscripts() {
        let lhs = LValue::Array(ArrayRef::new(VarId(0), vec![Expr::scalar(VarId(1))]));
        let st = Stmt::Assign {
            lhs,
            rhs: Expr::int(0),
        };
        assert_eq!(st.read_exprs().len(), 2);
    }

    #[test]
    fn blocks_of_if() {
        let st = Stmt::If {
            cond: Expr::BoolLit(true),
            then_body: vec![StmtId(1)],
            else_body: vec![],
        };
        let b = st.blocks();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], &[StmtId(1)]);
        assert!(b[1].is_empty());
    }
}
